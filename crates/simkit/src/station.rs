//! A single-server service station with non-preemptive priority
//! queueing.
//!
//! This models a disk (or any serially-served resource) the way the
//! paper does: one operation in service at a time, demand operations
//! queued ahead of prefetch operations ("prefetching a block will never
//! be done if other operations are waiting to be done on the same
//! disk"), and FIFO order within a priority class. Service is
//! non-preemptive: a prefetch already on the platter finishes even if a
//! demand request arrives meanwhile.
//!
//! Two cost styles coexist:
//!
//! * **Fixed** — the caller precomputes a [`SimDuration`] at arrival
//!   time ([`arrive`](Station::arrive)). This is the paper's original
//!   `latency + size/bandwidth` model.
//! * **Modelled** — the caller submits a [`JobSpec`] and a
//!   [`ServiceModel`] prices the job *when it starts service*
//!   ([`arrive_job`](Station::arrive_job)), so the cost can depend on
//!   device state such as head position.
//!
//! Within a priority class, the pluggable [`Scheduler`] decides which
//! waiting job starts next (FIFO by default; SSTF/C-LOOK live in
//! `devmodel`). The class is always chosen first, so reordering can
//! never serve a prefetch while demand work waits.
//!
//! The station is passive: `arrive` and `complete` tell the caller
//! *when* the started job will finish, and the caller schedules that
//! completion on its [`EventQueue`](crate::EventQueue).

use std::collections::{BTreeMap, VecDeque};

use lapobs::{Event, NoopRecorder, Recorder, StationId, NO_RID};

use crate::service::{FifoSched, JobSpec, Scheduler, ServiceCost, ServiceModel};
use crate::stats::TimeWeighted;
use crate::time::{SimDuration, SimTime};

/// Scheduling priority of a job. **Lower values are served first.**
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// Demand (application-issued) operations — served first.
    pub const DEMAND: Priority = Priority(0);
    /// Prefetch operations — served only when no demand work waits.
    pub const PREFETCH: Priority = Priority(1);
}

/// A job the station has just started serving. The caller must arrange
/// to call [`Station::complete`] at `completes_at`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StartedJob<T> {
    /// Caller-supplied identifier for the job.
    pub tag: T,
    /// Demand read the job serves ([`NO_RID`] when none) — copied from
    /// the job spec so callers need not look it up again.
    pub rid: u32,
    /// Absolute time at which service finishes.
    pub completes_at: SimTime,
    /// How long the job waited in queue before starting (zero when it
    /// started on arrival).
    pub wait: SimDuration,
    /// The priced service cost, including any mechanical breakdown —
    /// the raw material for per-request latency attribution.
    pub cost: ServiceCost,
}

/// How a waiting job will be priced when it starts.
enum JobCost {
    /// Caller-precomputed service time.
    Fixed(SimDuration),
    /// Priced by a [`ServiceModel`] at dispatch time.
    Modelled(JobSpec),
}

impl JobCost {
    fn pos(&self) -> Option<u64> {
        match self {
            JobCost::Fixed(_) => None,
            JobCost::Modelled(spec) => spec.pos,
        }
    }

    fn rid(&self) -> u32 {
        match self {
            JobCost::Fixed(_) => NO_RID,
            JobCost::Modelled(spec) => spec.rid,
        }
    }
}

struct Waiting<T> {
    tag: T,
    cost: JobCost,
    enqueued_at: SimTime,
}

/// Aggregate statistics kept by a [`Station`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StationStats {
    /// Jobs that have completed service.
    pub completed: u64,
    /// Total time the server has been busy.
    pub busy: SimDuration,
    /// Total time completed-or-started jobs spent waiting in queue.
    pub waited: SimDuration,
    /// Jobs cancelled while still waiting in queue.
    pub cancelled: u64,
    /// Jobs served out of arrival order by the scheduler.
    pub reordered: u64,
    /// In-service jobs aborted mid-service (outage timeout); the
    /// unserved remainder is un-credited from `busy`.
    pub aborted: u64,
    /// Jobs that began service, whether immediately on arrival or
    /// dispatched out of the queue. A deterministic cost counter:
    /// `dispatched - aborted == completed` once the station drains.
    pub dispatched: u64,
}

impl StationStats {
    /// Register all counters under `prefix.` in a metrics registry.
    pub fn register_into(&self, reg: &mut lapobs::Registry, prefix: &str) {
        reg.counter(format!("{prefix}.completed"), self.completed);
        reg.gauge(format!("{prefix}.busy_s"), self.busy.as_secs_f64());
        reg.gauge(format!("{prefix}.waited_s"), self.waited.as_secs_f64());
        reg.counter(format!("{prefix}.cancelled"), self.cancelled);
        reg.counter(format!("{prefix}.reordered"), self.reordered);
        reg.counter(format!("{prefix}.aborted"), self.aborted);
        reg.counter(format!("{prefix}.dispatched"), self.dispatched);
    }
}

/// A single server with priority classes and a pluggable dispatch order
/// (FIFO by default) within each class.
///
/// ```
/// use simkit::{Priority, SimDuration, SimTime, Station, StationId};
///
/// let mut disk: Station<&str> = Station::new(StationId::disk(0));
/// let job = disk
///     .arrive(SimTime::ZERO, Priority::DEMAND, SimDuration::from_millis(10), "read")
///     .expect("idle disk starts immediately");
/// // A prefetch queued behind it waits...
/// assert!(disk
///     .arrive(SimTime::ZERO, Priority::PREFETCH, SimDuration::from_millis(10), "prefetch")
///     .is_none());
/// // ...and starts when the demand read completes.
/// let next = disk.complete(job.completes_at).unwrap();
/// assert_eq!(next.tag, "prefetch");
/// ```
pub struct Station<T> {
    /// Identity of this station in the observability event stream.
    sid: StationId,
    /// Dispatch order within a priority class.
    sched: Box<dyn Scheduler>,
    /// Completion time, priority class and request id of the
    /// in-service job, if any. The tag itself is not stored: the caller
    /// keeps it inside the completion event it schedules, so storing it
    /// here would only force `T: Clone`.
    current: Option<(SimTime, Priority, u32)>,
    /// Outage hold: while set, arrivals queue even when the server is
    /// idle and nothing is dispatched out of the queue.
    held: bool,
    /// Waiting jobs, keyed by priority (lower key = served first).
    queues: BTreeMap<Priority, VecDeque<Waiting<T>>>,
    queued_len: usize,
    /// Time-weighted queue length (waiting jobs only).
    queue_track: TimeWeighted,
    stats: StationStats,
}

impl<T> Station<T> {
    /// Create an idle station identified as `sid`, serving each
    /// priority class in FIFO order.
    pub fn new(sid: StationId) -> Self {
        Self::with_scheduler(sid, Box::new(FifoSched))
    }

    /// Create an idle station with an explicit within-class dispatch
    /// order.
    pub fn with_scheduler(sid: StationId, sched: Box<dyn Scheduler>) -> Self {
        Station {
            sid,
            sched,
            current: None,
            held: false,
            queues: BTreeMap::new(),
            queued_len: 0,
            queue_track: TimeWeighted::new(SimTime::ZERO, 0.0),
            stats: StationStats::default(),
        }
    }

    /// This station's identity in the event stream.
    pub fn sid(&self) -> StationId {
        self.sid
    }

    /// Name of the within-class dispatch order (`"fifo"`, `"sstf"`, ...).
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// True if a job is currently in service.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Number of jobs waiting (not counting the one in service).
    pub fn queue_len(&self) -> usize {
        self.queued_len
    }

    /// Number of jobs waiting at exactly `prio`.
    pub fn queue_len_at(&self, prio: Priority) -> usize {
        self.queues.get(&prio).map_or(0, VecDeque::len)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> StationStats {
        self.stats
    }

    /// Submit a fixed-cost job at time `now` needing `service` time.
    ///
    /// If the server is idle the job starts immediately and its
    /// completion descriptor is returned — the caller must schedule a
    /// completion event and eventually call [`complete`](Self::complete).
    /// Otherwise the job waits.
    pub fn arrive(
        &mut self,
        now: SimTime,
        prio: Priority,
        service: SimDuration,
        tag: T,
    ) -> Option<StartedJob<T>> {
        self.arrive_obs(now, prio, service, tag, &mut NoopRecorder)
    }

    /// [`arrive`](Self::arrive), emitting queue/service events into
    /// `rec`. With [`NoopRecorder`] this is exactly `arrive` — the
    /// emission sites compile away under static dispatch.
    pub fn arrive_obs<R: Recorder>(
        &mut self,
        now: SimTime,
        prio: Priority,
        service: SimDuration,
        tag: T,
        rec: &mut R,
    ) -> Option<StartedJob<T>> {
        if self.current.is_none() && !self.held {
            Some(self.begin_service(now, prio, ServiceCost::flat(service), NO_RID, tag, rec))
        } else {
            self.push_waiting(now, prio, JobCost::Fixed(service), tag, rec);
            None
        }
    }

    /// Submit a model-priced job at time `now`. If the server is idle,
    /// `model` prices the job immediately and it starts; otherwise the
    /// [`JobSpec`] waits and is priced when dispatched (by
    /// [`complete_job`](Self::complete_job)).
    pub fn arrive_job<R: Recorder>(
        &mut self,
        now: SimTime,
        prio: Priority,
        spec: JobSpec,
        tag: T,
        model: &mut dyn ServiceModel,
        rec: &mut R,
    ) -> Option<StartedJob<T>> {
        if self.current.is_none() && !self.held {
            let cost = model.service(now, &spec);
            Some(self.begin_service(now, prio, cost, spec.rid, tag, rec))
        } else {
            self.push_waiting(now, prio, JobCost::Modelled(spec), tag, rec);
            None
        }
    }

    fn push_waiting<R: Recorder>(
        &mut self,
        now: SimTime,
        prio: Priority,
        cost: JobCost,
        tag: T,
        rec: &mut R,
    ) {
        let rid = cost.rid();
        self.queues.entry(prio).or_default().push_back(Waiting {
            tag,
            cost,
            enqueued_at: now,
        });
        self.queued_len += 1;
        self.queue_track.set(now, self.queued_len as f64);
        if rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::QueuePush {
                    station: self.sid,
                    class: prio.0,
                    depth: self.queued_len as u32,
                    rid,
                },
            );
        }
    }

    /// Mark the server busy with a freshly priced job and emit the
    /// opening span (plus the mechanical breakdown, if the cost model
    /// produced one). Jobs started on arrival pass `wait` zero;
    /// dispatches out of the queue pass the queueing delay, which the
    /// returned [`StartedJob`] carries for latency attribution.
    fn begin_service<R: Recorder>(
        &mut self,
        now: SimTime,
        prio: Priority,
        cost: ServiceCost,
        rid: u32,
        tag: T,
        rec: &mut R,
    ) -> StartedJob<T> {
        self.begin_service_waited(now, prio, cost, rid, SimDuration::ZERO, tag, rec)
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_service_waited<R: Recorder>(
        &mut self,
        now: SimTime,
        prio: Priority,
        cost: ServiceCost,
        rid: u32,
        wait: SimDuration,
        tag: T,
        rec: &mut R,
    ) -> StartedJob<T> {
        let completes_at = now + cost.total;
        self.stats.busy += cost.total;
        self.stats.dispatched += 1;
        self.current = Some((completes_at, prio, rid));
        if rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::ServiceBegin {
                    station: self.sid,
                    class: prio.0,
                    rid,
                },
            );
            if let Some(mech) = cost.mech {
                rec.record(
                    now.as_nanos(),
                    Event::DiskService {
                        station: self.sid,
                        seek_cylinders: mech.seek_cylinders,
                        rot_wait_ns: mech.rot_wait.as_nanos().min(u32::MAX as u64) as u32,
                        rid,
                    },
                );
            }
        }
        StartedJob {
            tag,
            rid,
            completes_at,
            wait,
            cost,
        }
    }

    /// Report that the in-service job finished at `now` (which must be
    /// the completion time previously returned). Returns the next job
    /// to start, if any, which the caller must again schedule.
    ///
    /// # Panics
    /// Panics if the station is idle — a completion without a job in
    /// service means the driving loop lost track of the station state.
    /// Also panics if the next queued job was submitted via
    /// [`arrive_job`](Self::arrive_job): model-priced jobs must be
    /// completed through [`complete_job`](Self::complete_job).
    pub fn complete(&mut self, now: SimTime) -> Option<StartedJob<T>> {
        self.complete_obs(now, &mut NoopRecorder)
    }

    /// [`complete`](Self::complete), emitting the closing service span
    /// (and the queue-pop/service-begin of the next job) into `rec`.
    pub fn complete_obs<R: Recorder>(
        &mut self,
        now: SimTime,
        rec: &mut R,
    ) -> Option<StartedJob<T>> {
        self.finish_current(now, rec);
        self.start_next(now, None, rec)
    }

    /// [`complete_obs`](Self::complete_obs) for stations fed through
    /// [`arrive_job`](Self::arrive_job): `model` prices the next job at
    /// dispatch time and informs the scheduler's head position.
    pub fn complete_job<R: Recorder>(
        &mut self,
        now: SimTime,
        model: &mut dyn ServiceModel,
        rec: &mut R,
    ) -> Option<StartedJob<T>> {
        self.finish_current(now, rec);
        self.start_next(now, Some(model), rec)
    }

    fn finish_current<R: Recorder>(&mut self, now: SimTime, rec: &mut R) {
        let (completes_at, class, rid) = self
            .current
            .take()
            .expect("Station::complete called while idle");
        debug_assert_eq!(completes_at, now, "completion at the wrong time");
        self.stats.completed += 1;
        if rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::ServiceEnd {
                    station: self.sid,
                    class: class.0,
                    rid,
                },
            );
        }
    }

    fn start_next<R: Recorder>(
        &mut self,
        now: SimTime,
        mut model: Option<&mut dyn ServiceModel>,
        rec: &mut R,
    ) -> Option<StartedJob<T>> {
        if self.held {
            return None;
        }
        // BTreeMap iterates keys in ascending order: lowest value =
        // highest priority first. The class is chosen before the
        // scheduler runs, so reordering never crosses class boundaries.
        let prio = *self
            .queues
            .iter()
            .find(|(_, q)| !q.is_empty())
            .map(|(p, _)| p)?;
        let q = self.queues.get_mut(&prio).unwrap();
        let idx = if self.sched.is_fifo() || q.len() == 1 {
            0
        } else {
            let head = model.as_ref().map_or(0, |m| m.position());
            let positions: Vec<Option<u64>> = q.iter().map(|w| w.cost.pos()).collect();
            let idx = self.sched.pick(head, &positions);
            debug_assert!(idx < q.len(), "scheduler picked an out-of-range job");
            idx.min(q.len() - 1)
        };
        let job = q.remove(idx).unwrap();
        let rid = job.cost.rid();
        if idx != 0 {
            self.stats.reordered += 1;
            if rec.enabled() {
                rec.record(
                    now.as_nanos(),
                    Event::QueueReorder {
                        station: self.sid,
                        class: prio.0,
                        picked: idx as u32,
                        rid,
                    },
                );
            }
        }
        self.queued_len -= 1;
        self.queue_track.set(now, self.queued_len as f64);
        let wait = now.saturating_since(job.enqueued_at);
        self.stats.waited += wait;
        let cost = match job.cost {
            JobCost::Fixed(service) => ServiceCost::flat(service),
            JobCost::Modelled(spec) => {
                let model = model
                    .as_mut()
                    .expect("model-priced job dispatched without a ServiceModel: use complete_job");
                model.service(now, &spec)
            }
        };
        if rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::QueuePop {
                    station: self.sid,
                    class: prio.0,
                    depth: self.queued_len as u32,
                    rid,
                },
            );
        }
        Some(self.begin_service_waited(now, prio, cost, rid, wait, job.tag, rec))
    }

    /// Remove all *waiting* jobs for which `pred` returns true at time
    /// `now` and return their tags in queue order (highest priority
    /// first). The in-service job is never cancelled (service is
    /// non-preemptive).
    pub fn cancel_where(&mut self, now: SimTime, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut out = Vec::new();
        for q in self.queues.values_mut() {
            let mut kept = VecDeque::with_capacity(q.len());
            for w in q.drain(..) {
                if pred(&w.tag) {
                    out.push(w.tag);
                } else {
                    kept.push_back(w);
                }
            }
            *q = kept;
        }
        self.queued_len -= out.len();
        self.stats.cancelled += out.len() as u64;
        self.queue_track.set(now, self.queued_len as f64);
        out
    }

    /// [`cancel_where`](Self::cancel_where), emitting one
    /// [`Event::Cancelled`] with the removal count into `rec`.
    pub fn cancel_where_obs<R: Recorder>(
        &mut self,
        now: SimTime,
        pred: impl FnMut(&T) -> bool,
        rec: &mut R,
    ) -> Vec<T> {
        let out = self.cancel_where(now, pred);
        if !out.is_empty() && rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::Cancelled {
                    station: self.sid,
                    count: out.len() as u32,
                },
            );
        }
        out
    }

    /// Move all waiting jobs matching `pred` to priority `to`,
    /// preserving their relative order and appending them behind jobs
    /// already waiting at `to`. Returns how many jobs moved.
    ///
    /// This models a demand read arriving for a block that is already
    /// queued for prefetch: the pending disk operation is re-queued at
    /// demand priority instead of being issued twice.
    pub fn promote_where(&mut self, to: Priority, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut moved = Vec::new();
        for (&p, q) in self.queues.iter_mut() {
            if p == to {
                continue;
            }
            let mut kept = VecDeque::with_capacity(q.len());
            for w in q.drain(..) {
                if pred(&w.tag) {
                    moved.push(w);
                } else {
                    kept.push_back(w);
                }
            }
            *q = kept;
        }
        let n = moved.len();
        let dst = self.queues.entry(to).or_default();
        for w in moved {
            dst.push_back(w);
        }
        n
    }

    /// Suspend dispatch (an outage window begins): arrivals queue even
    /// when the server is idle, and completions do not start the next
    /// job. The in-service job, if any, is *not* interrupted — use
    /// [`abort_current`](Self::abort_current) for that.
    pub fn hold(&mut self) {
        self.held = true;
    }

    /// End the dispatch hold. The caller should follow up with
    /// [`dispatch_idle`](Self::dispatch_idle) to restart service.
    pub fn release(&mut self) {
        self.held = false;
    }

    /// True while dispatch is suspended by [`hold`](Self::hold).
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Abort the in-service job (outage timeout): the server goes idle,
    /// the unserved remainder `completes_at - now` is un-credited from
    /// the busy time, and the job's service span is closed in the
    /// trace. Returns the aborted job's priority class and request id,
    /// or `None` if the station was idle.
    ///
    /// The station does not store the in-service tag (see `current`),
    /// so the *caller* — which holds the tag inside the completion
    /// event it scheduled — must treat that completion as stale and
    /// re-submit the job, e.g. via [`requeue_front`](Self::requeue_front).
    pub fn abort_current<R: Recorder>(
        &mut self,
        now: SimTime,
        rec: &mut R,
    ) -> Option<(Priority, u32)> {
        let (completes_at, prio, rid) = self.current.take()?;
        self.stats.busy -= completes_at.saturating_since(now);
        self.stats.aborted += 1;
        if rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::ServiceEnd {
                    station: self.sid,
                    class: prio.0,
                    rid,
                },
            );
        }
        Some((prio, rid))
    }

    /// Re-queue a previously aborted model-priced job at the *front* of
    /// its priority class, so it is the first job of that class served
    /// once dispatch resumes. Does not start service — call
    /// [`dispatch_idle`](Self::dispatch_idle) after.
    pub fn requeue_front<R: Recorder>(
        &mut self,
        now: SimTime,
        prio: Priority,
        spec: JobSpec,
        tag: T,
        rec: &mut R,
    ) {
        self.queues.entry(prio).or_default().push_front(Waiting {
            tag,
            cost: JobCost::Modelled(spec),
            enqueued_at: now,
        });
        self.queued_len += 1;
        self.queue_track.set(now, self.queued_len as f64);
        if rec.enabled() {
            rec.record(
                now.as_nanos(),
                Event::QueuePush {
                    station: self.sid,
                    class: prio.0,
                    depth: self.queued_len as u32,
                    rid: spec.rid,
                },
            );
        }
    }

    /// Start the next waiting job if the server is idle and not held —
    /// the restart step after [`release`](Self::release) or after a
    /// [`requeue_front`](Self::requeue_front) on an idle station. The
    /// caller must schedule the returned completion as usual.
    pub fn dispatch_idle<R: Recorder>(
        &mut self,
        now: SimTime,
        model: &mut dyn ServiceModel,
        rec: &mut R,
    ) -> Option<StartedJob<T>> {
        if self.current.is_some() {
            return None;
        }
        self.start_next(now, Some(model), rec)
    }

    /// Per-tag overlap of each waiting job's queue time with the window
    /// `[t_down, now]` — the raw material for attributing outage wait
    /// (failover) separately from ordinary queueing. Call at the end of
    /// an outage, before releasing the hold.
    pub fn held_overlap(&self, t_down: SimTime, now: SimTime) -> Vec<(&T, SimDuration)> {
        let mut out = Vec::new();
        for q in self.queues.values() {
            for w in q {
                let from = if w.enqueued_at > t_down {
                    w.enqueued_at
                } else {
                    t_down
                };
                let overlap = now.saturating_since(from);
                if overlap > SimDuration::ZERO {
                    out.push((&w.tag, overlap));
                }
            }
        }
        out
    }

    /// Time-weighted mean queue length over `[0, now]` (waiting jobs
    /// only, not the one in service).
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        self.queue_track.mean(now)
    }

    /// Server utilization over `[0, now]`: fraction of time busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        // `busy` counts service already *credited* (including the
        // remainder of an in-service job), so clamp at 1.
        (self.stats.busy.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DeviceOp, MechDetail};

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }
    fn sid() -> StationId {
        StationId::disk(0)
    }

    #[test]
    fn idle_station_starts_job_immediately() {
        let mut s: Station<&str> = Station::new(sid());
        let started = s.arrive(t(0), Priority::DEMAND, d(10), "a").unwrap();
        assert_eq!(started.completes_at, t(10));
        assert!(s.is_busy());
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn busy_station_queues_and_serves_fifo() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        assert!(s.arrive(t(1), Priority::DEMAND, d(5), 1).is_none());
        assert!(s.arrive(t(2), Priority::DEMAND, d(5), 2).is_none());
        let n1 = s.complete(t(10)).unwrap();
        assert_eq!((n1.tag, n1.completes_at), (1, t(15)));
        let n2 = s.complete(t(15)).unwrap();
        assert_eq!((n2.tag, n2.completes_at), (2, t(20)));
        assert!(s.complete(t(20)).is_none());
        assert_eq!(s.stats().completed, 3);
        assert_eq!(s.stats().reordered, 0);
    }

    #[test]
    fn demand_overtakes_prefetch() {
        let mut s: Station<&str> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), "busy").unwrap();
        s.arrive(t(1), Priority::PREFETCH, d(5), "pf");
        s.arrive(t(2), Priority::DEMAND, d(5), "demand");
        let next = s.complete(t(10)).unwrap();
        assert_eq!(next.tag, "demand");
        let after = s.complete(t(15)).unwrap();
        assert_eq!(after.tag, "pf");
    }

    #[test]
    fn service_is_non_preemptive() {
        let mut s: Station<&str> = Station::new(sid());
        s.arrive(t(0), Priority::PREFETCH, d(10), "pf").unwrap();
        // Demand arrival does not interrupt the prefetch in service.
        s.arrive(t(1), Priority::DEMAND, d(2), "demand");
        assert!(s.is_busy());
        let next = s.complete(t(10)).unwrap();
        assert_eq!(next.tag, "demand");
    }

    #[test]
    fn cancel_where_removes_only_waiting_jobs() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        s.arrive(t(1), Priority::PREFETCH, d(5), 1);
        s.arrive(t(2), Priority::PREFETCH, d(5), 2);
        s.arrive(t(3), Priority::PREFETCH, d(5), 3);
        let cancelled = s.cancel_where(t(4), |&tag| tag == 2);
        assert_eq!(cancelled, vec![2]);
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.stats().cancelled, 1);
        // The in-service job (tag 0) is untouched.
        let next = s.complete(t(10)).unwrap();
        assert_eq!(next.tag, 1);
    }

    #[test]
    fn promote_moves_prefetch_to_demand_class() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        s.arrive(t(1), Priority::PREFETCH, d(5), 10);
        s.arrive(t(2), Priority::PREFETCH, d(5), 11);
        s.arrive(t(3), Priority::DEMAND, d(5), 20);
        assert_eq!(s.promote_where(Priority::DEMAND, |&tag| tag == 11), 1);
        // Order now: 20 (was demand), 11 (promoted behind existing), 10.
        assert_eq!(s.complete(t(10)).unwrap().tag, 20);
        assert_eq!(s.complete(t(15)).unwrap().tag, 11);
        assert_eq!(s.complete(t(20)).unwrap().tag, 10);
    }

    #[test]
    fn wait_time_accounting() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        s.arrive(t(4), Priority::DEMAND, d(1), 1);
        s.complete(t(10));
        // Job 1 waited from t=4 to t=10.
        assert_eq!(s.stats().waited, d(6));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        s.complete(t(10));
        assert!((s.utilization(t(20)) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_queue_length_is_time_weighted() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        // One job waits from t=0 to t=10, then none until t=20.
        s.arrive(t(0), Priority::DEMAND, d(10), 1);
        s.complete(t(10));
        s.complete(t(20));
        assert!((s.mean_queue_len(t(20)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn completing_idle_station_panics() {
        let mut s: Station<u32> = Station::new(sid());
        s.complete(t(0));
    }

    /// A toy model: service = 1 µs per unit of distance from the head
    /// to the job, plus 1 µs; the head moves to the job's position.
    struct ToyDisk {
        head: u64,
    }

    impl ServiceModel for ToyDisk {
        fn position(&self) -> u64 {
            self.head
        }
        fn service(&mut self, _now: SimTime, job: &JobSpec) -> ServiceCost {
            let pos = job.pos.unwrap_or(self.head);
            let dist = pos.abs_diff(self.head);
            self.head = pos;
            ServiceCost {
                total: d(1 + dist),
                retry: SimDuration::ZERO,
                mech: Some(MechDetail {
                    seek_cylinders: dist as u32,
                    rot_wait: SimDuration::ZERO,
                }),
            }
        }
    }

    fn read_at(pos: u64) -> JobSpec {
        JobSpec {
            op: DeviceOp::Read,
            pos: Some(pos),
            bytes: 8192,
            blocks: 1,
            rid: NO_RID,
        }
    }

    #[test]
    fn modelled_jobs_are_priced_at_dispatch_time() {
        let mut disk = ToyDisk { head: 0 };
        let mut s: Station<u32> = Station::new(sid());
        // Starts immediately: distance 5 → 6 µs.
        let j = s
            .arrive_job(
                t(0),
                Priority::DEMAND,
                read_at(5),
                0,
                &mut disk,
                &mut NoopRecorder,
            )
            .unwrap();
        assert_eq!(j.completes_at, t(6));
        // Queued while busy; priced only when it starts, from the head
        // position the first job left behind (5 → 7 is distance 2).
        assert!(s
            .arrive_job(
                t(1),
                Priority::DEMAND,
                read_at(7),
                1,
                &mut disk,
                &mut NoopRecorder
            )
            .is_none());
        let n = s.complete_job(t(6), &mut disk, &mut NoopRecorder).unwrap();
        assert_eq!((n.tag, n.completes_at), (1, t(9)));
        assert_eq!(disk.head, 7);
    }

    /// A scheduler that always serves the job closest to the head.
    struct Nearest;
    impl Scheduler for Nearest {
        fn name(&self) -> &'static str {
            "nearest"
        }
        fn pick(&mut self, head: u64, queue: &[Option<u64>]) -> usize {
            queue
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.map_or(0, |p| p.abs_diff(head)), *i))
                .map(|(i, _)| i)
                .unwrap()
        }
    }

    #[test]
    fn scheduler_reorders_within_class_only() {
        let mut disk = ToyDisk { head: 0 };
        let mut s: Station<u32> = Station::with_scheduler(sid(), Box::new(Nearest));
        s.arrive_job(
            t(0),
            Priority::DEMAND,
            read_at(0),
            0,
            &mut disk,
            &mut NoopRecorder,
        )
        .unwrap();
        // Prefetch at distance 1, demands at distance 90 and 80.
        s.arrive_job(
            t(1),
            Priority::PREFETCH,
            read_at(1),
            10,
            &mut disk,
            &mut NoopRecorder,
        );
        s.arrive_job(
            t(2),
            Priority::DEMAND,
            read_at(90),
            20,
            &mut disk,
            &mut NoopRecorder,
        );
        s.arrive_job(
            t(3),
            Priority::DEMAND,
            read_at(80),
            21,
            &mut disk,
            &mut NoopRecorder,
        );
        // Demand class drains first even though the prefetch is nearer,
        // and within the class the nearer demand (80) wins.
        let n = s.complete_job(t(1), &mut disk, &mut NoopRecorder).unwrap();
        assert_eq!(n.tag, 21);
        assert_eq!(s.stats().reordered, 1);
        let n = s
            .complete_job(n.completes_at, &mut disk, &mut NoopRecorder)
            .unwrap();
        assert_eq!(n.tag, 20);
        let n = s
            .complete_job(n.completes_at, &mut disk, &mut NoopRecorder)
            .unwrap();
        assert_eq!(n.tag, 10);
    }

    #[test]
    fn held_station_queues_idle_arrivals() {
        let mut s: Station<u32> = Station::new(sid());
        s.hold();
        assert!(s.is_held());
        // Idle but held: the arrival queues instead of starting.
        assert!(s.arrive(t(0), Priority::DEMAND, d(10), 1).is_none());
        assert_eq!(s.queue_len(), 1);
        assert!(!s.is_busy());
        s.release();
        let mut disk = ToyDisk { head: 0 };
        // Fixed-cost job dispatches fine through dispatch_idle too.
        let j = s.dispatch_idle(t(5), &mut disk, &mut NoopRecorder).unwrap();
        assert_eq!((j.tag, j.completes_at, j.wait), (1, t(15), d(5)));
    }

    #[test]
    fn hold_defers_dispatch_at_completion() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(10), 0).unwrap();
        s.arrive(t(1), Priority::DEMAND, d(5), 1);
        s.hold();
        // The in-service job finishes (non-preemptive) but the queued
        // one must wait out the hold.
        assert!(s.complete(t(10)).is_none());
        assert_eq!(s.queue_len(), 1);
        s.release();
        let mut disk = ToyDisk { head: 0 };
        let j = s
            .dispatch_idle(t(20), &mut disk, &mut NoopRecorder)
            .unwrap();
        assert_eq!(j.tag, 1);
        assert_eq!(j.wait, d(19));
    }

    #[test]
    fn abort_requeue_serves_aborted_job_first() {
        let mut disk = ToyDisk { head: 0 };
        let mut s: Station<u32> = Station::new(sid());
        s.arrive_job(
            t(0),
            Priority::DEMAND,
            read_at(5),
            7,
            &mut disk,
            &mut NoopRecorder,
        )
        .unwrap();
        s.arrive_job(
            t(1),
            Priority::DEMAND,
            read_at(9),
            8,
            &mut disk,
            &mut NoopRecorder,
        );
        // Outage at t=2: abort the in-service job, hold the station.
        let (prio, _rid) = s.abort_current(t(2), &mut NoopRecorder).unwrap();
        assert_eq!(prio, Priority::DEMAND);
        assert!(!s.is_busy());
        assert_eq!(s.stats().aborted, 1);
        // Only the 2 µs actually served stays credited as busy time.
        assert_eq!(s.stats().busy, d(2));
        s.hold();
        // The caller re-submits the aborted job at the front.
        s.requeue_front(t(2), prio, read_at(5), 7, &mut NoopRecorder);
        assert_eq!(s.queue_len(), 2);
        // Outage ends: the aborted job is served before the later one.
        s.release();
        let j = s
            .dispatch_idle(t(12), &mut disk, &mut NoopRecorder)
            .unwrap();
        assert_eq!(j.tag, 7);
        let j = s
            .complete_job(j.completes_at, &mut disk, &mut NoopRecorder)
            .unwrap();
        assert_eq!(j.tag, 8);
    }

    #[test]
    fn abort_on_idle_station_is_none() {
        let mut s: Station<u32> = Station::new(sid());
        assert!(s.abort_current(t(0), &mut NoopRecorder).is_none());
    }

    #[test]
    fn held_overlap_attributes_outage_wait() {
        let mut s: Station<u32> = Station::new(sid());
        s.arrive(t(0), Priority::DEMAND, d(100), 0).unwrap();
        // Job 1 queued before the outage, job 2 during it.
        s.arrive(t(1), Priority::DEMAND, d(5), 1);
        s.hold(); // outage at t=10
        s.arrive(t(12), Priority::DEMAND, d(5), 2);
        let overlaps = s.held_overlap(t(10), t(20));
        assert_eq!(overlaps.len(), 2);
        assert_eq!(
            overlaps
                .iter()
                .map(|&(tag, ov)| (*tag, ov))
                .collect::<Vec<_>>(),
            vec![(1, d(10)), (2, d(8))]
        );
    }

    #[test]
    fn reorder_emits_event_and_stat() {
        let mut disk = ToyDisk { head: 0 };
        let mut s: Station<u32> = Station::with_scheduler(sid(), Box::new(Nearest));
        s.arrive_job(
            t(0),
            Priority::DEMAND,
            read_at(0),
            0,
            &mut disk,
            &mut NoopRecorder,
        )
        .unwrap();
        s.arrive_job(
            t(1),
            Priority::DEMAND,
            read_at(50),
            1,
            &mut disk,
            &mut NoopRecorder,
        );
        s.arrive_job(
            t(2),
            Priority::DEMAND,
            read_at(2),
            2,
            &mut disk,
            &mut NoopRecorder,
        );
        let mut rec = lapobs::TraceRecorder::new();
        let n = s.complete_job(t(1), &mut disk, &mut rec).unwrap();
        assert_eq!(n.tag, 2);
        assert!(rec
            .events()
            .any(|(_, e)| matches!(e, Event::QueueReorder { picked: 1, .. })));
        assert!(rec
            .events()
            .any(|(_, e)| matches!(e, Event::DiskService { .. })));
    }
}
