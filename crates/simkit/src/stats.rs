//! Statistics accumulators used across the simulation.
//!
//! Everything here is streaming and O(1) per observation, so the hot
//! simulation loop never allocates while recording metrics.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Streaming mean/min/max/variance of a scalar series (Welford's
/// algorithm, numerically stable).
#[derive(Clone, Copy, Debug)]
pub struct Series {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Series {
    fn default() -> Self {
        Self::new()
    }
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Series {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in milliseconds (the paper's reporting unit).
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Register this series under `name` in a metrics registry.
    pub fn register_into(&self, reg: &mut lapobs::Registry, name: &str) {
        reg.series(
            name,
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max(),
        );
    }

    /// Merge another series into this one (parallel reduction).
    pub fn merge(&mut self, other: &Series) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// A time-weighted average of a piecewise-constant quantity (queue
/// length, blocks in cache, …).
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            value,
            last_change: start,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Record that the quantity changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.weighted_sum += self.value * now.saturating_since(self.last_change).as_nanos() as f64;
        self.value = value;
        self.last_change = now;
    }

    /// Adjust the quantity by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value of the quantity.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Register the time-weighted mean over `[start, now]` under
    /// `name` in a metrics registry.
    pub fn register_into(&self, reg: &mut lapobs::Registry, name: &str, now: SimTime) {
        reg.time_weighted(name, self.mean(now));
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.start).as_nanos() as f64;
        if span == 0.0 {
            return self.value;
        }
        let tail = self.value * now.saturating_since(self.last_change).as_nanos() as f64;
        (self.weighted_sum + tail) / span
    }
}

/// A power-of-two-bucketed histogram of durations, for latency
/// distributions (bucket `i` holds durations in `[2^i, 2^{i+1})` µs;
/// bucket 0 also absorbs sub-microsecond values).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total: SimDuration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 48],
            count: 0,
            total: SimDuration::ZERO,
        }
    }

    /// Record one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let idx = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros()) as usize
        };
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += d;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket boundaries —
    /// returns the upper edge of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return SimDuration::from_micros(1u64 << (i + 1));
            }
        }
        unreachable!("histogram counts are consistent");
    }

    /// Register the raw bucket counts under `name` in a metrics
    /// registry; mean/p50/p95/p99 are derived at export time, so
    /// registered histograms from different sources stay mergeable.
    pub fn register_into(&self, reg: &mut lapobs::Registry, name: &str) {
        reg.histogram(
            name,
            lapobs::HistogramData {
                count: self.count,
                total_us: self.total.as_nanos() as f64 / 1e3,
                buckets: self.buckets.clone(),
            },
        );
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_mean_and_variance() {
        let mut s = Series::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn default_equals_new() {
        // A derived Default would zero min/max instead of using the
        // +/-infinity sentinels, corrupting the first observations.
        let mut s = Series::default();
        s.record(5.0);
        s.record(7.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn empty_series_is_zeroed() {
        let s = Series::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn series_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Series::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Series::new();
        let mut right = Series::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_nanos(10), 4.0); // 0 for 10ns
        tw.set(SimTime::from_nanos(30), 1.0); // 4 for 20ns
                                              // 1 for 10ns => (0*10 + 4*20 + 1*10) / 40 = 90/40
        assert!((tw.mean(SimTime::from_nanos(40)) - 2.25).abs() < 1e-12);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_nanos(10), 2.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn histogram_mean_and_count() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(100));
        h.record(SimDuration::from_micros(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean().as_micros(), 200);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(SimDuration::from_micros(us));
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        assert!(q50 <= q90);
        assert!(q90.as_micros() >= 256);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_micros(), 15);
    }

    #[test]
    fn histogram_handles_zero_latency() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }
}
