//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds so that simulations
//! are exactly deterministic and insensitive to floating-point rounding
//! (the paper's parameters — µs startups, ms seeks, MB/s bandwidths —
//! all convert exactly or near-exactly to nanoseconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely
    /// far in the future" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Saturates to zero if `earlier` is
    /// actually later (callers normally guarantee monotonicity).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    ///
    /// # Panics
    /// Panics on overflow, like every other arithmetic path here.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        match us.checked_mul(1_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration overflow"),
        }
    }

    /// Construct from milliseconds.
    ///
    /// # Panics
    /// Panics on overflow, like every other arithmetic path here.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration overflow"),
        }
    }

    /// Construct from whole seconds.
    ///
    /// # Panics
    /// Panics on overflow, like every other arithmetic path here.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration overflow"),
        }
    }

    /// Construct from fractional seconds (rounding to the nearest
    /// nanosecond). Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds (e.g. a 10.5 ms disk seek).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The time needed to move `bytes` at `bytes_per_sec` (rounded to
    /// the nearest nanosecond). Panics if the rate is not positive.
    pub fn transfer(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "invalid bandwidth: {bytes_per_sec}"
        );
        Self::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow (non-monotonic times)"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn fractional_constructors_round() {
        // 10.5 ms disk seek from Table 1.
        assert_eq!(SimDuration::from_millis_f64(10.5).as_nanos(), 10_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.5e-9).as_nanos(), 1); // rounds up
    }

    #[test]
    fn transfer_time_matches_table1_disk() {
        // 8 KB block at 10 MB/s => 8192 / 10e6 s = 819.2 us.
        let d = SimDuration::transfer(8192, 10e6);
        assert_eq!(d.as_nanos(), 819_200);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        let t2 = t + SimDuration::from_micros(5);
        assert_eq!((t2 - t).as_micros(), 5);
        assert_eq!((SimDuration::from_micros(4) * 3).as_micros(), 12);
        assert_eq!((SimDuration::from_micros(12) / 3).as_micros(), 4);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
        assert_eq!(a.saturating_since(b).as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn non_monotonic_subtraction_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }
}
