//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use simkit::{EventQueue, Priority, SimDuration, SimTime, Station};

proptest! {
    /// Events always come out in nondecreasing time order, and events
    /// scheduled for the same instant keep their scheduling order.
    #[test]
    fn event_queue_is_ordered_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut last_time = 0u64;
        let mut last_seq_at_time = std::collections::HashMap::new();
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            prop_assert!(t >= last_time);
            last_time = t;
            if let Some(&prev) = last_seq_at_time.get(&t) {
                prop_assert!(i > prev, "FIFO violated at t={}", t);
            }
            last_seq_at_time.insert(t, i);
        }
    }

    /// The station conserves jobs: every arrival is eventually either
    /// completed or cancelled, never duplicated or lost.
    #[test]
    fn station_conserves_jobs(jobs in prop::collection::vec((0u8..2, 1u64..100), 1..100)) {
        let mut station: Station<usize> = Station::new();
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut started = std::collections::HashSet::new();
        let mut completed = std::collections::HashSet::new();

        // Jobs arrive 1ns apart; completions are processed in order.
        let mut t = SimTime::ZERO;
        for (id, &(prio, service)) in jobs.iter().enumerate() {
            // Drain completions that precede this arrival.
            while queue.peek_time().is_some_and(|ct| ct <= t) {
                let (ct, done_id) = queue.pop().unwrap();
                prop_assert!(completed.insert(done_id));
                if let Some(next) = station.complete(ct) {
                    prop_assert!(started.insert(next.tag));
                    queue.schedule(next.completes_at, next.tag);
                }
            }
            if let Some(sj) = station.arrive(
                t,
                Priority(prio),
                SimDuration::from_nanos(service),
                id,
            ) {
                prop_assert!(started.insert(sj.tag));
                queue.schedule(sj.completes_at, sj.tag);
            }
            t += SimDuration::from_nanos(1);
        }
        // Drain everything.
        while let Some((ct, done_id)) = queue.pop() {
            prop_assert!(completed.insert(done_id));
            if let Some(next) = station.complete(ct) {
                prop_assert!(started.insert(next.tag));
                queue.schedule(next.completes_at, next.tag);
            }
        }
        prop_assert_eq!(completed.len(), jobs.len());
        prop_assert!(!station.is_busy());
        prop_assert_eq!(station.queue_len(), 0);
        prop_assert_eq!(station.stats().completed, jobs.len() as u64);
    }

    /// Within one priority class the station is strictly FIFO.
    #[test]
    fn station_fifo_within_class(n in 2usize..50) {
        let mut station: Station<usize> = Station::new();
        let first = station
            .arrive(SimTime::ZERO, Priority::DEMAND, SimDuration::from_nanos(10), usize::MAX)
            .unwrap();
        for id in 0..n {
            let r = station.arrive(
                SimTime::from_nanos(1 + id as u64),
                Priority::DEMAND,
                SimDuration::from_nanos(5),
                id,
            );
            prop_assert!(r.is_none());
        }
        let mut t = first.completes_at;
        for expect in 0..n {
            let next = station.complete(t).unwrap();
            prop_assert_eq!(next.tag, expect);
            t = next.completes_at;
        }
    }
}

proptest! {
    /// Series::merge is equivalent to sequential recording regardless
    /// of the split point.
    #[test]
    fn series_merge_is_split_invariant(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        use simkit::stats::Series;
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Series::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Series::new();
        let mut right = Series::new();
        for &x in &xs[..split] {
            left.record(x);
        }
        for &x in &xs[split..] {
            right.record(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// A time-weighted average always lies between the min and max of
    /// the recorded values.
    #[test]
    fn time_weighted_mean_is_bounded(
        changes in prop::collection::vec((1u64..1000, -100.0f64..100.0), 1..50),
    ) {
        use simkit::stats::TimeWeighted;
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &(dt, v) in &changes {
            t += dt;
            tw.set(SimTime::from_nanos(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mean = tw.mean(SimTime::from_nanos(t + 10));
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} not in [{lo}, {hi}]");
    }

    /// Histogram quantiles are monotone in q and bounded by the bucket
    /// grid.
    #[test]
    fn histogram_quantiles_are_monotone(
        us in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        use simkit::stats::LatencyHistogram;
        let mut h = LatencyHistogram::new();
        for &u in &us {
            h.record(SimDuration::from_micros(u));
        }
        let mut prev = SimDuration::ZERO;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) regressed");
            prev = v;
        }
        prop_assert_eq!(h.count(), us.len() as u64);
    }
}
