//! Property tests for the simulation substrate, driven by a seeded
//! in-file PRNG (no external dependencies — the workspace must build
//! offline). Each test sweeps many seeds; a failure message names the
//! seed so the case can be replayed exactly.

use simkit::{EventQueue, Priority, SimDuration, SimTime, Station, StationId};

/// SplitMix64 — enough randomness for generating test cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Events always come out in nondecreasing time order, and events
/// scheduled for the same instant keep their scheduling order.
#[test]
fn event_queue_is_ordered_and_stable() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let n = rng.below(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(0, 1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut last_time = 0u64;
        let mut last_seq_at_time = std::collections::HashMap::new();
        while let Some((at, (t, i))) = q.pop() {
            assert_eq!(at.as_nanos(), t, "seed {seed}");
            assert!(t >= last_time, "seed {seed}");
            last_time = t;
            if let Some(&prev) = last_seq_at_time.get(&t) {
                assert!(i > prev, "FIFO violated at t={t} (seed {seed})");
            }
            last_seq_at_time.insert(t, i);
        }
    }
}

/// The station conserves jobs: every arrival is eventually either
/// completed or cancelled, never duplicated or lost.
#[test]
fn station_conserves_jobs() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed ^ 0x5747_4154);
        let n = rng.below(1, 100) as usize;
        let jobs: Vec<(u8, u64)> = (0..n)
            .map(|_| (rng.below(0, 2) as u8, rng.below(1, 100)))
            .collect();

        let mut station: Station<usize> = Station::new(StationId::disk(0));
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut started = std::collections::HashSet::new();
        let mut completed = std::collections::HashSet::new();

        // Jobs arrive 1ns apart; completions are processed in order.
        let mut t = SimTime::ZERO;
        for (id, &(prio, service)) in jobs.iter().enumerate() {
            // Drain completions that precede this arrival.
            while queue.peek_time().is_some_and(|ct| ct <= t) {
                let (ct, done_id) = queue.pop().unwrap();
                assert!(completed.insert(done_id), "seed {seed}");
                if let Some(next) = station.complete(ct) {
                    assert!(started.insert(next.tag), "seed {seed}");
                    queue.schedule(next.completes_at, next.tag);
                }
            }
            if let Some(sj) =
                station.arrive(t, Priority(prio), SimDuration::from_nanos(service), id)
            {
                assert!(started.insert(sj.tag), "seed {seed}");
                queue.schedule(sj.completes_at, sj.tag);
            }
            t += SimDuration::from_nanos(1);
        }
        // Drain everything.
        while let Some((ct, done_id)) = queue.pop() {
            assert!(completed.insert(done_id), "seed {seed}");
            if let Some(next) = station.complete(ct) {
                assert!(started.insert(next.tag), "seed {seed}");
                queue.schedule(next.completes_at, next.tag);
            }
        }
        assert_eq!(completed.len(), jobs.len(), "seed {seed}");
        assert!(!station.is_busy(), "seed {seed}");
        assert_eq!(station.queue_len(), 0, "seed {seed}");
        assert_eq!(station.stats().completed, jobs.len() as u64, "seed {seed}");
    }
}

/// Within one priority class the station is strictly FIFO.
#[test]
fn station_fifo_within_class() {
    for seed in 0..32u64 {
        let mut rng = Rng(seed ^ 0xF1F0);
        let n = rng.below(2, 50) as usize;
        let mut station: Station<usize> = Station::new(StationId::disk(0));
        let first = station
            .arrive(
                SimTime::ZERO,
                Priority::DEMAND,
                SimDuration::from_nanos(10),
                usize::MAX,
            )
            .unwrap();
        for id in 0..n {
            let r = station.arrive(
                SimTime::from_nanos(1 + id as u64),
                Priority::DEMAND,
                SimDuration::from_nanos(5),
                id,
            );
            assert!(r.is_none(), "seed {seed}");
        }
        let mut t = first.completes_at;
        for expect in 0..n {
            let next = station.complete(t).unwrap();
            assert_eq!(next.tag, expect, "seed {seed}");
            t = next.completes_at;
        }
    }
}

/// Series::merge is equivalent to sequential recording regardless of
/// the split point.
#[test]
fn series_merge_is_split_invariant() {
    use simkit::stats::Series;
    for seed in 0..64u64 {
        let mut rng = Rng(seed ^ 0x5E51E5);
        let n = rng.below(2, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.f64() - 0.5) * 2e6).collect();
        let split = (n as f64 * rng.f64()) as usize;
        let mut whole = Series::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Series::new();
        let mut right = Series::new();
        for &x in &xs[..split] {
            left.record(x);
        }
        for &x in &xs[split..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count(), "seed {seed}");
        assert!((left.mean() - whole.mean()).abs() < 1e-6, "seed {seed}");
        assert!(
            (left.variance() - whole.variance()).abs() < 1e-3,
            "seed {seed}"
        );
        assert_eq!(left.min(), whole.min(), "seed {seed}");
        assert_eq!(left.max(), whole.max(), "seed {seed}");
    }
}

/// A time-weighted average always lies between the min and max of the
/// recorded values.
#[test]
fn time_weighted_mean_is_bounded() {
    use simkit::stats::TimeWeighted;
    for seed in 0..64u64 {
        let mut rng = Rng(seed ^ 0x0071_37ED);
        let n = rng.below(1, 50) as usize;
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for _ in 0..n {
            t += rng.below(1, 1000);
            let v = (rng.f64() - 0.5) * 200.0;
            tw.set(SimTime::from_nanos(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mean = tw.mean(SimTime::from_nanos(t + 10));
        assert!(
            mean >= lo - 1e-9 && mean <= hi + 1e-9,
            "mean {mean} not in [{lo}, {hi}] (seed {seed})"
        );
    }
}

/// Histogram quantiles are monotone in q and bounded by the bucket
/// grid.
#[test]
fn histogram_quantiles_are_monotone() {
    use simkit::stats::LatencyHistogram;
    for seed in 0..64u64 {
        let mut rng = Rng(seed ^ 0x4157);
        let n = rng.below(1, 200) as usize;
        let us: Vec<u64> = (0..n).map(|_| rng.below(0, 1_000_000)).collect();
        let mut h = LatencyHistogram::new();
        for &u in &us {
            h.record(SimDuration::from_micros(u));
        }
        let mut prev = SimDuration::ZERO;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) regressed (seed {seed})");
            prev = v;
        }
        assert_eq!(h.count(), us.len() as u64, "seed {seed}");
    }
}
