//! # simprof — self-profiling of the simulator itself
//!
//! Every other observability layer in this workspace watches the
//! *simulated* system (lapobs events, request spans, the metrics
//! Registry). `simprof` watches the *simulator*: how much work the
//! event loop did to produce a result, and how fast it did it. The
//! ROADMAP's cluster-scale and event-queue items need this instrument
//! first — a bucketed queue or a parallel sweep runner can only be
//! judged against a baseline profile that CI keeps honest.
//!
//! The profile has two strictly separated halves:
//!
//! * **Deterministic cost counters** ([`Counters`]) — events popped,
//!   queue pushes, peak/mean event-queue depth, station dispatches,
//!   predictor table lookups/updates, cache metadata probes. These
//!   count *algorithmic* work, so they are bit-stable across runs and
//!   machines and can be compared exactly in CI (`lapreport
//!   bench-diff` hard-fails on any drift).
//! * **Wall-clock phase timers** ([`PhaseWall`]) and the throughput
//!   derived from them (simulated-reads/sec, events/sec). Wall time is
//!   machine noise — a loaded laptop is half the speed of an idle one
//!   — so these are reported informationally and only ever *warn* in
//!   CI.
//!
//! Behind the `count-alloc` cargo feature the crate additionally
//! installs a counting global allocator, so the profile can report
//! allocations per simulated read. The feature is off by default: a
//! `#[global_allocator]` is a whole-binary decision, and the counter
//! is process-global — it sees every thread's allocations, so it is
//! only meaningful for single-threaded runs (`lapsim --profile`,
//! `experiments perf`), never for the parallel sweep grids.

#![warn(missing_docs)]
// `deny` rather than the workspace-usual `forbid` — the counting
// allocator below needs one `unsafe impl GlobalAlloc`, scoped to its
// own module, and `forbid` cannot be overridden locally.
#![deny(unsafe_code)]

use std::fmt::Write as _;
use std::time::Duration;

/// Deterministic cost counters for one simulation run.
///
/// Every field counts a unit of algorithmic work whose tally depends
/// only on the configuration, workload, and seed — never on the
/// machine, thread timing, or allocator. Two same-seed runs must
/// produce identical `Counters`; CI gates on this.
///
/// Counters are accumulated as integers only (the same discipline the
/// metrics Registry uses), so map iteration order cannot leak into
/// them; ratios like [`Counters::mean_queue_depth`] are derived at
/// display time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Events popped from the event queue (one per main-loop turn).
    pub events: u64,
    /// Events pushed onto the event queue.
    pub queue_pushes: u64,
    /// Largest number of pending events observed after any push.
    pub peak_queue_depth: u64,
    /// Sum over all pops of the queue depth at the moment of the pop
    /// (counting the popped event itself). Divided by `events` this
    /// gives the mean depth seen by the hot loop.
    pub queue_depth_ticks: u64,
    /// Jobs that began service at any station (disk dispatches).
    pub station_dispatches: u64,
    /// Predictor table lookups: calls that consult the per-file model
    /// to produce or advance a prediction.
    pub pred_lookups: u64,
    /// Predictor table updates: accesses observed into the model.
    pub pred_updates: u64,
    /// Cooperative-cache metadata probes: lookups, insertions, and
    /// membership tests against the cache's block-location tables.
    pub cache_probes: u64,
}

impl Counters {
    /// Mean event-queue depth seen by the event loop, or 0 for an
    /// empty run.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.queue_depth_ticks as f64 / self.events as f64
        }
    }

    /// Events popped per simulated read — the headline "how much
    /// simulator work does one unit of simulated work cost" ratio.
    pub fn events_per_read(&self, reads: u64) -> f64 {
        if reads == 0 {
            0.0
        } else {
            self.events as f64 / reads as f64
        }
    }

    /// Total subsystem operations (station + predictor + cache), used
    /// for per-subsystem share columns.
    pub fn subsystem_total(&self) -> u64 {
        self.station_dispatches + self.pred_lookups + self.pred_updates + self.cache_probes
    }
}

/// Wall-clock time spent in each phase of a run.
///
/// Machine-dependent by nature: report, compare informally, never
/// hard-gate.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseWall {
    /// Building the workload-validated `Simulation` (caches, stations,
    /// per-process state).
    pub setup: Duration,
    /// The event loop proper, from the first scheduled event to queue
    /// drain.
    pub event_loop: Duration,
    /// Finalisation: merging statistics and building the report.
    pub report: Duration,
}

impl PhaseWall {
    /// Total wall time across all three phases.
    pub fn total(&self) -> Duration {
        self.setup + self.event_loop + self.report
    }
}

/// A complete self-profile for one simulation run: deterministic
/// counters plus informational wall-clock data.
///
/// Deliberately *not* part of `SimReport` — the report derives
/// `PartialEq` and is the subject of several bit-identity gates
/// (profiled vs unprofiled, traced vs untraced), so anything
/// machine-noisy must live outside it.
#[derive(Clone, Debug)]
pub struct SimProfile {
    /// Deterministic cost counters (bit-stable; CI hard-gates them).
    pub counters: Counters,
    /// Post-warmup simulated reads the run measured, the denominator
    /// for per-read ratios.
    pub reads: u64,
    /// Wall-clock phase timers (machine noise; warn-only).
    pub wall: PhaseWall,
    /// Allocations performed during the event loop, when the
    /// `count-alloc` feature compiled the counting allocator in.
    /// `None` otherwise. Process-global: only meaningful for
    /// single-threaded runs.
    pub allocs: Option<u64>,
}

impl SimProfile {
    /// Simulated reads completed per wall-clock second of event loop.
    pub fn reads_per_sec(&self) -> f64 {
        per_sec(self.reads, self.wall.event_loop)
    }

    /// Events processed per wall-clock second of event loop.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.counters.events, self.wall.event_loop)
    }

    /// Allocations per simulated read, when the counting allocator is
    /// compiled in and the run measured any reads.
    pub fn allocs_per_read(&self) -> Option<f64> {
        match (self.allocs, self.reads) {
            (Some(a), r) if r > 0 => Some(a as f64 / r as f64),
            _ => None,
        }
    }

    /// Render the profile as a human-readable block, deterministic
    /// counters first, wall-clock data clearly marked as informational.
    pub fn render(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        let _ = writeln!(out, "simulator self-profile");
        let _ = writeln!(out, "  deterministic counters (bit-stable, CI-gated):");
        let _ = writeln!(
            out,
            "    events popped        {:>12}  ({:.2} per read)",
            c.events,
            c.events_per_read(self.reads)
        );
        let _ = writeln!(out, "    queue pushes         {:>12}", c.queue_pushes);
        let _ = writeln!(
            out,
            "    queue depth          {:>12}  peak, {:.2} mean",
            c.peak_queue_depth,
            c.mean_queue_depth()
        );
        let _ = writeln!(out, "    station dispatches   {:>12}", c.station_dispatches);
        let _ = writeln!(
            out,
            "    predictor table ops  {:>12}  ({} lookups + {} updates)",
            c.pred_lookups + c.pred_updates,
            c.pred_lookups,
            c.pred_updates
        );
        let _ = writeln!(out, "    cache metadata probes{:>12}", c.cache_probes);
        if let Some(apr) = self.allocs_per_read() {
            let _ = writeln!(
                out,
                "    allocations          {:>12}  ({apr:.1} per read, count-alloc)",
                self.allocs.unwrap_or(0)
            );
        }
        let _ = writeln!(out, "  wall clock (informational, machine-dependent):");
        let _ = writeln!(
            out,
            "    setup {:.3} ms | event loop {:.3} ms | report {:.3} ms",
            ms(self.wall.setup),
            ms(self.wall.event_loop),
            ms(self.wall.report)
        );
        let _ = writeln!(
            out,
            "    throughput: {:.0} simulated reads/s, {:.0} events/s",
            self.reads_per_sec(),
            self.events_per_sec()
        );
        out
    }
}

fn per_sec(count: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s > 0.0 {
        count as f64 / s
    } else {
        0.0
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Total allocations performed by this process so far, when the
/// `count-alloc` feature installed the counting allocator; `None`
/// otherwise. Callers take a delta around the region of interest.
pub fn alloc_count() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(alloc::count())
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// Counting global allocator, compiled in only under `count-alloc`.
///
/// Wraps `std::alloc::System` and bumps a relaxed atomic on every
/// `alloc`/`realloc`. Caveats, spelled out because they are easy to
/// trip over: the count is *process-global* (every thread, every
/// subsystem — including the profiler's own report formatting), so it
/// is only meaningful as a delta around a single-threaded region; and
/// it measures allocator *calls*, not bytes or peak footprint.
#[cfg(feature = "count-alloc")]
#[allow(unsafe_code)]
mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimProfile {
        SimProfile {
            counters: Counters {
                events: 1000,
                queue_pushes: 1100,
                peak_queue_depth: 12,
                queue_depth_ticks: 4000,
                station_dispatches: 300,
                pred_lookups: 200,
                pred_updates: 150,
                cache_probes: 900,
            },
            reads: 250,
            wall: PhaseWall {
                setup: Duration::from_millis(2),
                event_loop: Duration::from_millis(40),
                report: Duration::from_millis(1),
            },
            allocs: None,
        }
    }

    #[test]
    fn derived_ratios() {
        let p = sample();
        assert_eq!(p.counters.events_per_read(p.reads), 4.0);
        assert_eq!(p.counters.mean_queue_depth(), 4.0);
        assert_eq!(p.counters.subsystem_total(), 300 + 200 + 150 + 900);
        assert!(p.events_per_sec() > 0.0);
        assert!(p.reads_per_sec() > 0.0);
    }

    #[test]
    fn empty_run_has_zero_ratios() {
        let c = Counters::default();
        assert_eq!(c.mean_queue_depth(), 0.0);
        assert_eq!(c.events_per_read(0), 0.0);
        let p = SimProfile {
            counters: c,
            reads: 0,
            wall: PhaseWall::default(),
            allocs: None,
        };
        assert_eq!(p.reads_per_sec(), 0.0);
        assert_eq!(p.allocs_per_read(), None);
    }

    #[test]
    fn render_marks_wall_as_informational() {
        let text = sample().render();
        assert!(text.contains("bit-stable"));
        assert!(text.contains("informational"));
        assert!(text.contains("events popped"));
        // No alloc line unless the counting allocator measured one.
        assert!(!text.contains("count-alloc") || cfg!(feature = "count-alloc"));
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn counting_allocator_counts() {
        let before = alloc_count().unwrap();
        let v: Vec<u64> = (0..1024).collect();
        assert_eq!(v.len(), 1024);
        let after = alloc_count().unwrap();
        assert!(after > before, "allocation went uncounted");
    }
}
