//! Synthetic database workload: sequential range scans mixed with
//! Zipf-skewed point lookups over one large table.
//!
//! Scans are long contiguous runs — the friendliest possible shape for
//! OBA/IS_PPM and for aggressive walking. Point lookups are
//! index-then-table block pairs at popularity-scattered positions:
//! individually unpredictable for interval predictors, but the hot key
//! set repeats, which is what a history-replay predictor can mine. The
//! cache-overflow knob is `table_blocks`: a table larger than the
//! aggregate cooperative cache turns every cold scan into real disk
//! work and makes wasted aggressive prefetches expensive.

use ioworkload::util::{Rng64, Zipf};
use ioworkload::{FileId, FileMeta, NodeId, Op, ProcId, ProcessTrace, Workload};
use simkit::SimDuration;

/// Parameters of the database generator.
#[derive(Clone, Debug)]
pub struct DbParams {
    /// Fraction of transactions that are sequential range scans.
    pub scan_frac: f64,
    /// Table size in blocks — the cache-overflow knob.
    pub table_blocks: u64,
    /// Client nodes.
    pub nodes: u32,
    /// Client processes per node.
    pub clients_per_node: u32,
    /// Transactions per client.
    pub transactions: u32,
    /// Scan length range in blocks.
    pub scan_blocks: (u64, u64),
    /// Request size of a scan, in blocks.
    pub scan_request_blocks: u64,
    /// Zipf skew of point-lookup key popularity.
    pub point_zipf_s: f64,
    /// Think time inside a point transaction, ms range.
    pub think_ms: (f64, f64),
    /// Gap between scan requests, ms range (the server streams).
    pub scan_gap_ms: (f64, f64),
    /// Gap between transactions, ms range.
    pub txn_gap_ms: (f64, f64),
}

impl Default for DbParams {
    fn default() -> Self {
        DbParams {
            scan_frac: 0.3,
            table_blocks: 4096,
            nodes: 4,
            clients_per_node: 2,
            transactions: 100,
            scan_blocks: (16, 64),
            scan_request_blocks: 8,
            point_zipf_s: 0.7,
            think_ms: (2.0, 10.0),
            scan_gap_ms: (1.0, 3.0),
            txn_gap_ms: (20.0, 80.0),
        }
    }
}

impl DbParams {
    /// Generate the workload for a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        assert!(self.table_blocks >= 64 && self.nodes > 0 && self.clients_per_node > 0);
        assert!((0.0..=1.0).contains(&self.scan_frac));
        let mut rng = Rng64::new(seed);
        let block_size = 8192u64;

        let index_blocks = (self.table_blocks / 32).max(16);
        let files = vec![
            FileMeta {
                id: FileId(0),
                size: self.table_blocks * block_size,
            },
            FileMeta {
                id: FileId(1),
                size: index_blocks * block_size,
            },
        ];
        let point_zipf = Zipf::new(self.table_blocks as usize, self.point_zipf_s);
        let index_zipf = Zipf::new(index_blocks as usize, self.point_zipf_s);
        // Popularity rank -> table block via a multiplicative scatter,
        // so the hot key set is NOT a contiguous prefix an OBA walk
        // would sweep up by accident.
        let scatter = |rank: u64, n: u64| (rank.wrapping_mul(2_654_435_761)) % n;

        let mut processes = Vec::new();
        for node in 0..self.nodes {
            for _ in 0..self.clients_per_node {
                let proc = ProcId(processes.len() as u32);
                let mut ops = Vec::new();
                for _ in 0..self.transactions {
                    ops.push(Op::Compute(ms(&mut rng, self.txn_gap_ms)));
                    if rng.chance(self.scan_frac) {
                        // Range scan: contiguous run of the table.
                        let len = rng.range_u64(self.scan_blocks.0, self.scan_blocks.1);
                        let start = rng.range_u64(0, self.table_blocks - len);
                        let mut blk = start;
                        while blk < start + len {
                            let n = self.scan_request_blocks.min(start + len - blk);
                            ops.push(Op::Compute(ms(&mut rng, self.scan_gap_ms)));
                            ops.push(Op::Read {
                                file: FileId(0),
                                offset: blk * block_size,
                                len: n * block_size,
                            });
                            blk += n;
                        }
                    } else {
                        // Point lookup: one index block, then the
                        // popularity-scattered table block it points to.
                        let idx = scatter(index_zipf.sample(&mut rng) as u64, index_blocks);
                        ops.push(Op::Read {
                            file: FileId(1),
                            offset: idx * block_size,
                            len: block_size,
                        });
                        ops.push(Op::Compute(ms(&mut rng, self.think_ms)));
                        let key = scatter(point_zipf.sample(&mut rng) as u64, self.table_blocks);
                        ops.push(Op::Read {
                            file: FileId(0),
                            offset: key * block_size,
                            len: block_size,
                        });
                    }
                }
                processes.push(ProcessTrace {
                    proc,
                    node: NodeId(node),
                    ops,
                });
            }
        }

        let wl = Workload {
            name: format!("db-{:.2}scan-{}blk", self.scan_frac, self.table_blocks),
            block_size,
            nodes: self.nodes,
            files,
            processes,
        };
        wl.validate();
        wl
    }
}

fn ms(rng: &mut Rng64, range: (f64, f64)) -> SimDuration {
    SimDuration::from_millis_f64(rng.range_f64(range.0, range.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_validates() {
        let p = DbParams::default();
        let a = p.generate(7);
        assert_eq!(a.to_text(), p.generate(7).to_text());
        for seed in 0..10 {
            p.generate(seed).validate();
        }
    }

    #[test]
    fn scan_frac_controls_the_mix() {
        let reads = |wl: &Workload| {
            wl.processes
                .iter()
                .flat_map(|p| &p.ops)
                .filter_map(|o| match o {
                    Op::Read { len, .. } => Some(len / wl.block_size),
                    _ => None,
                })
                .sum::<u64>()
        };
        let scans = DbParams {
            scan_frac: 1.0,
            ..DbParams::default()
        }
        .generate(1);
        let points = DbParams {
            scan_frac: 0.0,
            ..DbParams::default()
        }
        .generate(1);
        // All-scan workloads read far more blocks than all-point ones
        // (scans stream 16-64 blocks per transaction, points read 2).
        assert!(reads(&scans) > 3 * reads(&points));
        // All-point workloads are almost never sequential: adjacent
        // table blocks back to back happen only by scatter collision.
        let (mut pairs, mut adjacent) = (0u64, 0u64);
        for p in &points.processes {
            let mut last: Option<u64> = None;
            for op in &p.ops {
                if let Op::Read { file, offset, .. } = op {
                    if file.0 == 0 {
                        let blk = offset / points.block_size;
                        if let Some(l) = last {
                            pairs += 1;
                            if blk == l + 1 {
                                adjacent += 1;
                            }
                        }
                        last = Some(blk);
                    }
                }
            }
        }
        assert!(
            adjacent * 20 < pairs.max(1),
            "point lookups look sequential: {adjacent}/{pairs}"
        );
    }

    #[test]
    fn table_blocks_knob_scales_the_working_set() {
        let small = DbParams {
            table_blocks: 512,
            ..DbParams::default()
        }
        .generate(1);
        let big = DbParams {
            table_blocks: 8192,
            ..DbParams::default()
        }
        .generate(1);
        assert_eq!(small.files[0].size * 16, big.files[0].size);
    }
}
