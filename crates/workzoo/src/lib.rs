//! # workzoo — the workload zoo
//!
//! The paper asks its question — does a *linear* limit on prefetch
//! aggressiveness beat both timidity and unlimited greed? — on exactly
//! two workloads (CHARISMA, Sprite). Both are parallel-scientific
//! shapes whose working sets *fit* the aggregate cooperative cache, so
//! history-replay predictors (markov, bare mithril) cover zero reads on
//! them: every block a replayed history could predict is still cached.
//!
//! This crate makes workloads pluggable the way the predictor registry
//! made predictors pluggable:
//!
//! * [`WorkloadSpec`] — parse/print CLI workload specs
//!   (`charisma:paper`, `web:64,0.8,256`, `strace:FILE`, …) with a
//!   [`registry_help`] menu carried on every parse error;
//! * synthetic generators with modern access shapes and a first-class
//!   *cache-overflow knob*: [`web::WebParams`] (Zipf file popularity +
//!   session locality), [`db::DbParams`] (sequential scans mixed with
//!   point lookups), [`mltrain::MlTrainParams`] (epoch-replayed
//!   shuffled reads over dataset shards — the canonical overflow
//!   shape);
//! * a trace front-end ([`tracefile`]) that parses strace- and
//!   blkparse-style text records into the existing
//!   [`ioworkload::Workload`] per-process demand model, preserving
//!   per-process ordering and mapping bytes to blocks through the
//!   existing layout.
//!
//! ```
//! use workzoo::WorkloadSpec;
//!
//! let spec = WorkloadSpec::parse("mltrain:4,2048").unwrap();
//! assert_eq!(spec.canonical(), "mltrain:4,2048");
//! let wl = spec.build(42).unwrap();
//! assert!(wl.io_ops() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod mltrain;
mod spec;
pub mod tracefile;
pub mod web;

pub use spec::{registry_help, BuildError, WorkloadSpec, ZooKind, ZooSpecError};
pub use tracefile::TraceParseError;
