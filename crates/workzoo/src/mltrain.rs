//! Synthetic ML-training workload: epoch-replayed shuffled reads over
//! dataset shards — the canonical cache-overflow shape.
//!
//! The dataset is split into shard *files* (the pre-shuffled-shards
//! idiom of real training pipelines): each shard's samples are permuted
//! **once** at dataset-creation time, and every epoch replays the
//! identical per-shard order. Workers own disjoint shard subsets, so
//! the paper's linear limit — one block per *file* in flight — still
//! gets cross-file parallelism from concurrent shards.
//!
//! This is the workload PR 6's open finding needs: within one shard
//! the permuted sample order makes interval-keyed predictors (IS_PPM)
//! and one-block-ahead guesses wrong, while the order *repeats* epoch
//! after epoch — exactly what a history-replay predictor (markov, the
//! MITHRIL miner) can learn in epoch 1 and cash in from epoch 2 on.
//! The cache-overflow knob is `dataset_blocks`: once the dataset
//! exceeds the aggregate cooperative cache, replayed predictions are
//! *actionable* (the blocks really left the cache).

use ioworkload::util::{shuffle, Rng64};
use ioworkload::{FileId, FileMeta, NodeId, Op, ProcId, ProcessTrace, Workload};
use simkit::SimDuration;

/// Parameters of the ML-training generator.
#[derive(Clone, Debug)]
pub struct MlTrainParams {
    /// Training epochs. Epoch 1 is cold (the predictor mines); later
    /// epochs replay the identical per-shard sample order.
    pub epochs: u32,
    /// Dataset size in blocks — the cache-overflow knob.
    pub dataset_blocks: u64,
    /// Workers (one per node), each owning `shards / workers` shards.
    pub workers: u32,
    /// Blocks per shard file.
    pub shard_blocks: u64,
    /// Blocks per sample record (one read per sample).
    pub sample_blocks: u64,
    /// Training-step compute between sample reads, ms range.
    pub step_ms: (f64, f64),
    /// Gap between shards within an epoch, ms range.
    pub shard_gap_ms: (f64, f64),
    /// Gap between epochs, ms range.
    pub epoch_gap_ms: (f64, f64),
}

impl Default for MlTrainParams {
    fn default() -> Self {
        MlTrainParams {
            epochs: 4,
            dataset_blocks: 2048,
            workers: 4,
            shard_blocks: 128,
            sample_blocks: 2,
            step_ms: (2.0, 6.0),
            shard_gap_ms: (20.0, 60.0),
            epoch_gap_ms: (300.0, 900.0),
        }
    }
}

impl MlTrainParams {
    /// Generate the workload for a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        assert!(self.epochs > 0 && self.workers > 0);
        assert!(self.sample_blocks > 0 && self.shard_blocks >= self.sample_blocks);
        let mut rng = Rng64::new(seed);
        let block_size = 8192u64;

        // Split the dataset into shard files: at least one per worker,
        // whole samples per shard.
        let shards = (self.dataset_blocks / self.shard_blocks).max(self.workers as u64);
        let samples_per_shard = (self.dataset_blocks / shards / self.sample_blocks).max(1);
        let shard_bytes = samples_per_shard * self.sample_blocks * block_size;

        let files: Vec<FileMeta> = (0..shards)
            .map(|i| FileMeta {
                id: FileId(i as u32),
                size: shard_bytes,
            })
            .collect();

        // The fixed per-shard sample permutation, drawn once — every
        // epoch replays it identically (shuffle-once shards).
        let perms: Vec<Vec<u64>> = (0..shards)
            .map(|_| {
                let mut p: Vec<u64> = (0..samples_per_shard).collect();
                shuffle(&mut rng, &mut p);
                p
            })
            .collect();

        let mut processes = Vec::new();
        for w in 0..self.workers {
            let owned: Vec<u64> = (0..shards)
                .filter(|s| s % self.workers as u64 == w as u64)
                .collect();
            let mut ops = Vec::new();
            for _ in 0..self.epochs {
                ops.push(Op::Compute(ms(&mut rng, self.epoch_gap_ms)));
                for &shard in &owned {
                    ops.push(Op::Compute(ms(&mut rng, self.shard_gap_ms)));
                    for &sample in &perms[shard as usize] {
                        ops.push(Op::Compute(ms(&mut rng, self.step_ms)));
                        ops.push(Op::Read {
                            file: FileId(shard as u32),
                            offset: sample * self.sample_blocks * block_size,
                            len: self.sample_blocks * block_size,
                        });
                    }
                }
            }
            processes.push(ProcessTrace {
                proc: ProcId(w),
                node: NodeId(w),
                ops,
            });
        }

        let wl = Workload {
            name: format!("mltrain-{}ep-{}blk", self.epochs, self.dataset_blocks),
            block_size,
            nodes: self.workers,
            files,
            processes,
        };
        wl.validate();
        wl
    }
}

fn ms(rng: &mut Rng64, range: (f64, f64)) -> SimDuration {
    SimDuration::from_millis_f64(rng.range_f64(range.0, range.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads_of(wl: &Workload, proc: usize) -> Vec<(u32, u64)> {
        wl.processes[proc]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Read { file, offset, .. } => Some((file.0, *offset)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn generation_is_deterministic_and_validates() {
        let p = MlTrainParams::default();
        let a = p.generate(7);
        assert_eq!(a.to_text(), p.generate(7).to_text());
        for seed in 0..10 {
            p.generate(seed).validate();
        }
    }

    #[test]
    fn epochs_replay_the_identical_order() {
        let p = MlTrainParams::default();
        let wl = p.generate(3);
        for w in 0..p.workers as usize {
            let reads = reads_of(&wl, w);
            assert_eq!(reads.len() as u32 % p.epochs, 0);
            let per_epoch = reads.len() / p.epochs as usize;
            for e in 1..p.epochs as usize {
                assert_eq!(
                    reads[..per_epoch],
                    reads[e * per_epoch..(e + 1) * per_epoch],
                    "epoch {e} of worker {w} deviates from the replay"
                );
            }
        }
    }

    #[test]
    fn shard_order_is_shuffled_not_sequential() {
        let wl = MlTrainParams::default().generate(1);
        // Within the first shard visit, the sample offsets must not be
        // the identity order (the permutation really permutes).
        let reads = reads_of(&wl, 0);
        let first_file = reads[0].0;
        let first_shard: Vec<u64> = reads
            .iter()
            .take_while(|(f, _)| *f == first_file)
            .map(|(_, o)| *o)
            .collect();
        assert!(first_shard.len() > 10);
        let mut sorted = first_shard.clone();
        sorted.sort_unstable();
        assert_ne!(first_shard, sorted, "samples read in sequential order");
        // ... but every sample is visited exactly once per epoch.
        sorted.dedup();
        assert_eq!(sorted.len(), first_shard.len());
    }

    #[test]
    fn workers_own_disjoint_shards() {
        let p = MlTrainParams::default();
        let wl = p.generate(2);
        let mut owner = std::collections::HashMap::new();
        for w in 0..p.workers as usize {
            for (f, _) in reads_of(&wl, w) {
                let prev = owner.insert(f, w);
                assert!(
                    prev.is_none() || prev == Some(w),
                    "shard {f} has two owners"
                );
            }
        }
        assert!(owner.len() >= p.workers as usize);
    }

    #[test]
    fn dataset_blocks_knob_scales_the_working_set() {
        let footprint = |wl: &Workload| wl.files.iter().map(|f| f.size).sum::<u64>();
        let small = MlTrainParams {
            dataset_blocks: 512,
            ..MlTrainParams::default()
        }
        .generate(1);
        let big = MlTrainParams {
            dataset_blocks: 4096,
            ..MlTrainParams::default()
        }
        .generate(1);
        assert_eq!(footprint(&small) * 8, footprint(&big));
    }
}
