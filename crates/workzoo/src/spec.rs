//! The workload registry: [`ZooKind`] names every workload the zoo
//! knows, and [`WorkloadSpec`] parses/prints the CLI spelling of one
//! (`charisma:paper`, `web:64,0.8,256`, `strace:FILE`, …).

use std::fmt;

use ioworkload::Workload;

use crate::db::DbParams;
use crate::mltrain::MlTrainParams;
use crate::tracefile;
use crate::web::WebParams;

/// Which workload a spec selects, with its parsed parameters.
#[derive(Clone, PartialEq, Debug)]
pub enum ZooKind {
    /// CHARISMA-like parallel-scientific workload (built-in generator).
    Charisma {
        /// Paper-scale (128 nodes) instead of the small test scale.
        paper: bool,
    },
    /// Sprite-like network-of-workstations workload (built-in generator).
    Sprite {
        /// Paper-scale (50 nodes) instead of the small test scale.
        paper: bool,
    },
    /// Web-serving sessions: Zipf-skewed file popularity with session
    /// locality.
    Web {
        /// Number of user sessions replayed across the server nodes.
        sessions: u32,
        /// Zipf skew of the file-popularity distribution.
        zipf_s: f64,
        /// Number of distinct files — the cache-overflow knob.
        files: u32,
    },
    /// Database scan/point-lookup mix over one large table.
    Db {
        /// Fraction of transactions that are sequential range scans.
        scan_frac: f64,
        /// Table size in blocks — the cache-overflow knob.
        table_blocks: u64,
    },
    /// ML training: epoch-replayed shuffled reads over dataset shards.
    MlTrain {
        /// Number of training epochs (epoch 1 is cold; later epochs
        /// replay the identical per-shard sample order).
        epochs: u32,
        /// Dataset size in blocks — the cache-overflow knob.
        dataset_blocks: u64,
    },
    /// Replay an strace-style text trace from a file.
    Strace {
        /// Path of the trace file.
        path: String,
    },
    /// Replay a blkparse-style text trace from a file.
    Blktrace {
        /// Path of the trace file.
        path: String,
    },
}

/// A parsed workload specification — the registry entry selected by a
/// CLI string such as `charisma:paper` or `mltrain:4,2048`.
///
/// `parse` and [`canonical`](Self::canonical) round-trip:
///
/// ```
/// use workzoo::WorkloadSpec;
/// let spec = WorkloadSpec::parse("web:64,0.8,256").unwrap();
/// assert_eq!(spec.canonical(), "web:64,0.8,256");
/// assert_eq!(WorkloadSpec::parse(&spec.canonical()).unwrap(), spec);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadSpec {
    /// The workload this spec selects.
    pub kind: ZooKind,
}

/// The rejection of a workload spec string. Its `Display` includes the
/// full registry listing so CLI users see every valid name and an
/// example spelling on failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZooSpecError {
    spec: String,
}

impl ZooSpecError {
    /// The rejected input string.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for ZooSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unknown workload spec {:?}", self.spec)?;
        f.write_str(&registry_help())
    }
}

impl std::error::Error for ZooSpecError {}

/// Building a parsed spec failed — the trace file was unreadable or its
/// records did not parse. (The synthetic generators cannot fail.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError {
    spec: String,
    msg: String,
}

impl BuildError {
    /// The canonical spec that failed to build.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot build workload {}: {}", self.spec, self.msg)
    }
}

impl std::error::Error for BuildError {}

/// Registry rows: parameter syntax and a one-line description.
const REGISTRY: &[(&str, &str, &str)] = &[
    (
        "charisma",
        "charisma[:small|paper]",
        "CHARISMA-like parallel-scientific I/O (default small)",
    ),
    (
        "sprite",
        "sprite[:small|paper]",
        "Sprite-like NOW workstation I/O (default small)",
    ),
    (
        "web",
        "web[:SESSIONS[,ZIPF_S[,FILES]]]",
        "web sessions: Zipf popularity + locality; FILES overflows the cache",
    ),
    (
        "db",
        "db[:SCAN_FRAC[,TABLE_BLOCKS]]",
        "database scan/point mix; TABLE_BLOCKS overflows the cache",
    ),
    (
        "mltrain",
        "mltrain[:EPOCHS[,DATASET_BLOCKS]]",
        "epoch-replayed shuffled shard reads; DATASET_BLOCKS overflows the cache",
    ),
    ("strace", "strace:FILE", "replay an strace-style text trace"),
    (
        "blktrace",
        "blktrace:FILE",
        "replay a blkparse-style text trace",
    ),
];

/// The registry listing shown on parse errors and in `--help` output:
/// every valid workload name with its parameter syntax and examples.
pub fn registry_help() -> String {
    use std::fmt::Write;
    let mut out = String::from("valid workload specs:\n");
    for (_, syntax, desc) in REGISTRY {
        writeln!(out, "    {syntax:<32} {desc}").unwrap();
    }
    out.push_str("  examples: charisma:paper  web:64,0.8,256  db:0.3,4096  mltrain:4,2048\n");
    out.push_str("            strace:traces/app.strace  blktrace:traces/dev.blkparse\n");
    out
}

impl WorkloadSpec {
    /// Wrap a workload kind as a spec.
    pub const fn new(kind: ZooKind) -> Self {
        WorkloadSpec { kind }
    }

    /// Parse a CLI workload spec. See [`registry_help`] for the
    /// accepted grammar.
    pub fn parse(s: &str) -> Result<Self, ZooSpecError> {
        let err = || ZooSpecError {
            spec: s.to_string(),
        };
        let (base, params) = match s.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (s, None),
        };
        let kind = match base {
            "charisma" | "sprite" => {
                let paper = match params {
                    None | Some("small") => false,
                    Some("paper") => true,
                    Some(_) => return Err(err()),
                };
                if base == "charisma" {
                    ZooKind::Charisma { paper }
                } else {
                    ZooKind::Sprite { paper }
                }
            }
            "web" => {
                let d = WebParams::default();
                let (sessions, zipf_s, files) =
                    parse_up_to_3(params, (d.sessions, d.zipf_s, d.files), err)?;
                if sessions < 1 || !(0.0..=5.0).contains(&zipf_s) || files < 2 {
                    return Err(err());
                }
                ZooKind::Web {
                    sessions,
                    zipf_s,
                    files,
                }
            }
            "db" => {
                let d = DbParams::default();
                let (scan_frac, table_blocks) =
                    parse_up_to_2(params, (d.scan_frac, d.table_blocks), err)?;
                if !(0.0..=1.0).contains(&scan_frac) || table_blocks < 64 {
                    return Err(err());
                }
                ZooKind::Db {
                    scan_frac,
                    table_blocks,
                }
            }
            "mltrain" => {
                let d = MlTrainParams::default();
                let (epochs, dataset_blocks) =
                    parse_up_to_2(params, (d.epochs, d.dataset_blocks), err)?;
                if epochs < 1 || dataset_blocks < 64 {
                    return Err(err());
                }
                ZooKind::MlTrain {
                    epochs,
                    dataset_blocks,
                }
            }
            "strace" | "blktrace" => {
                let path = match params {
                    Some(p) if !p.is_empty() => p.to_string(),
                    _ => return Err(err()),
                };
                if base == "strace" {
                    ZooKind::Strace { path }
                } else {
                    ZooKind::Blktrace { path }
                }
            }
            _ => return Err(err()),
        };
        Ok(WorkloadSpec { kind })
    }

    /// Parse a CLI spec with a CLI-level default scale: the bare
    /// built-in names `charisma` and `sprite` pick up `default_scale`
    /// (the `--scale` flag), while explicit parameters win. Zoo
    /// generators and traces ignore the scale.
    pub fn parse_cli(s: &str, default_scale: &str) -> Result<Self, ZooSpecError> {
        match s {
            "charisma" | "sprite" => Self::parse(&format!("{s}:{default_scale}")),
            _ => Self::parse(s),
        }
    }

    /// The canonical spelling of this spec — parsing it yields back the
    /// same spec (`parse(canonical()) == self`).
    pub fn canonical(&self) -> String {
        match &self.kind {
            ZooKind::Charisma { paper } => {
                format!("charisma:{}", if *paper { "paper" } else { "small" })
            }
            ZooKind::Sprite { paper } => {
                format!("sprite:{}", if *paper { "paper" } else { "small" })
            }
            ZooKind::Web {
                sessions,
                zipf_s,
                files,
            } => format!("web:{sessions},{zipf_s},{files}"),
            ZooKind::Db {
                scan_frac,
                table_blocks,
            } => format!("db:{scan_frac},{table_blocks}"),
            ZooKind::MlTrain {
                epochs,
                dataset_blocks,
            } => format!("mltrain:{epochs},{dataset_blocks}"),
            ZooKind::Strace { path } => format!("strace:{path}"),
            ZooKind::Blktrace { path } => format!("blktrace:{path}"),
        }
    }

    /// Build the workload this spec names. Deterministic for the
    /// synthetic kinds: a `(spec, seed)` pair always produces the
    /// identical workload. Trace kinds read and parse their file (the
    /// seed is ignored — a trace *is* its own randomness).
    pub fn build(&self, seed: u64) -> Result<Workload, BuildError> {
        let err = |msg: String| BuildError {
            spec: self.canonical(),
            msg,
        };
        Ok(match &self.kind {
            ZooKind::Charisma { paper } => {
                use ioworkload::charisma::CharismaParams;
                if *paper {
                    CharismaParams::paper().generate(seed)
                } else {
                    CharismaParams::small().generate(seed)
                }
            }
            ZooKind::Sprite { paper } => {
                use ioworkload::sprite::SpriteParams;
                if *paper {
                    SpriteParams::paper().generate(seed)
                } else {
                    SpriteParams::small().generate(seed)
                }
            }
            ZooKind::Web {
                sessions,
                zipf_s,
                files,
            } => WebParams {
                sessions: *sessions,
                zipf_s: *zipf_s,
                files: *files,
                ..WebParams::default()
            }
            .generate(seed),
            ZooKind::Db {
                scan_frac,
                table_blocks,
            } => DbParams {
                scan_frac: *scan_frac,
                table_blocks: *table_blocks,
                ..DbParams::default()
            }
            .generate(seed),
            ZooKind::MlTrain {
                epochs,
                dataset_blocks,
            } => MlTrainParams {
                epochs: *epochs,
                dataset_blocks: *dataset_blocks,
                ..MlTrainParams::default()
            }
            .generate(seed),
            ZooKind::Strace { path } => {
                let text = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
                tracefile::parse_strace(path, &text).map_err(|e| err(e.to_string()))?
            }
            ZooKind::Blktrace { path } => {
                let text = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
                tracefile::parse_blktrace(path, &text).map_err(|e| err(e.to_string()))?
            }
        })
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// Parse up to two comma-separated parameters, keeping defaults for the
/// ones not given. `Some("")` and trailing garbage reject.
fn parse_up_to_2<A, B>(
    params: Option<&str>,
    defaults: (A, B),
    err: impl Fn() -> ZooSpecError,
) -> Result<(A, B), ZooSpecError>
where
    A: std::str::FromStr + Copy,
    B: std::str::FromStr + Copy,
{
    let (mut a, mut b) = defaults;
    if let Some(p) = params {
        let mut it = p.split(',');
        a = it.next().unwrap_or("").parse().map_err(|_| err())?;
        if let Some(second) = it.next() {
            b = second.parse().map_err(|_| err())?;
        }
        if it.next().is_some() {
            return Err(err());
        }
    }
    Ok((a, b))
}

/// Like [`parse_up_to_2`] for three parameters.
fn parse_up_to_3<A, B, C>(
    params: Option<&str>,
    defaults: (A, B, C),
    err: impl Fn() -> ZooSpecError,
) -> Result<(A, B, C), ZooSpecError>
where
    A: std::str::FromStr + Copy,
    B: std::str::FromStr + Copy,
    C: std::str::FromStr + Copy,
{
    let (mut a, mut b, mut c) = defaults;
    if let Some(p) = params {
        let mut it = p.split(',');
        a = it.next().unwrap_or("").parse().map_err(|_| err())?;
        if let Some(second) = it.next() {
            b = second.parse().map_err(|_| err())?;
        }
        if let Some(third) = it.next() {
            c = third.parse().map_err(|_| err())?;
        }
        if it.next().is_some() {
            return Err(err());
        }
    }
    Ok((a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_registry_name() {
        for (spec, kind) in [
            ("charisma", ZooKind::Charisma { paper: false }),
            ("charisma:small", ZooKind::Charisma { paper: false }),
            ("charisma:paper", ZooKind::Charisma { paper: true }),
            ("sprite:paper", ZooKind::Sprite { paper: true }),
            (
                "web",
                ZooKind::Web {
                    sessions: WebParams::default().sessions,
                    zipf_s: WebParams::default().zipf_s,
                    files: WebParams::default().files,
                },
            ),
            (
                "web:10",
                ZooKind::Web {
                    sessions: 10,
                    zipf_s: WebParams::default().zipf_s,
                    files: WebParams::default().files,
                },
            ),
            (
                "web:10,1.2,512",
                ZooKind::Web {
                    sessions: 10,
                    zipf_s: 1.2,
                    files: 512,
                },
            ),
            (
                "db:0.5",
                ZooKind::Db {
                    scan_frac: 0.5,
                    table_blocks: DbParams::default().table_blocks,
                },
            ),
            (
                "db:0.5,8192",
                ZooKind::Db {
                    scan_frac: 0.5,
                    table_blocks: 8192,
                },
            ),
            (
                "mltrain:6,4096",
                ZooKind::MlTrain {
                    epochs: 6,
                    dataset_blocks: 4096,
                },
            ),
            (
                "strace:a/b.txt",
                ZooKind::Strace {
                    path: "a/b.txt".into(),
                },
            ),
            (
                "blktrace:dev.txt",
                ZooKind::Blktrace {
                    path: "dev.txt".into(),
                },
            ),
        ] {
            assert_eq!(WorkloadSpec::parse(spec).unwrap().kind, kind, "{spec}");
        }
    }

    #[test]
    fn canonical_round_trips() {
        for spec in [
            "charisma:small",
            "charisma:paper",
            "sprite:small",
            "web:64,0.8,256",
            "web:10,1.25,512",
            "db:0.3,4096",
            "mltrain:4,2048",
            "strace:traces/app.strace",
            "blktrace:dev.blkparse",
        ] {
            let parsed = WorkloadSpec::parse(spec).unwrap();
            assert_eq!(parsed.canonical(), spec);
            assert_eq!(WorkloadSpec::parse(&parsed.canonical()).unwrap(), parsed);
        }
        // Defaulted parameters print explicitly in canonical form.
        assert_eq!(
            WorkloadSpec::parse("charisma").unwrap().canonical(),
            "charisma:small"
        );
        assert_eq!(
            WorkloadSpec::parse("mltrain").unwrap().canonical(),
            "mltrain:4,2048"
        );
    }

    #[test]
    fn cli_default_scale_applies_to_builtins_only() {
        let s = WorkloadSpec::parse_cli("charisma", "paper").unwrap();
        assert_eq!(s.kind, ZooKind::Charisma { paper: true });
        // Explicit parameters win over the CLI default.
        let s = WorkloadSpec::parse_cli("charisma:small", "paper").unwrap();
        assert_eq!(s.kind, ZooKind::Charisma { paper: false });
        // Zoo kinds ignore the scale entirely.
        let s = WorkloadSpec::parse_cli("mltrain", "paper").unwrap();
        assert!(matches!(s.kind, ZooKind::MlTrain { .. }));
        // A bad scale surfaces as a bad spec, menu attached.
        assert!(WorkloadSpec::parse_cli("charisma", "huge").is_err());
    }

    #[test]
    fn rejections() {
        for bad in [
            "",
            "minix",
            "charisma:huge",
            "sprite:8",
            "web:0",
            "web:x",
            "web:4,-1.0",
            "web:4,9.9",
            "web:4,0.8,1",
            "web:4,0.8,64,9",
            "db:1.5",
            "db:0.3,1",
            "db:0.3,4096,7",
            "mltrain:0",
            "mltrain:2,8",
            "strace",
            "strace:",
            "blktrace:",
        ] {
            let e = WorkloadSpec::parse(bad).unwrap_err();
            assert_eq!(e.spec(), bad);
            let msg = e.to_string();
            assert!(msg.contains("unknown workload spec"), "{bad}: {msg}");
            assert!(
                msg.contains("mltrain[:EPOCHS[,DATASET_BLOCKS]]"),
                "{bad}: {msg}"
            );
        }
    }

    #[test]
    fn registry_help_lists_every_name() {
        let help = registry_help();
        for (name, ..) in REGISTRY {
            assert!(help.contains(name), "registry help misses {name}");
        }
        assert!(help.contains("examples:"));
    }

    #[test]
    fn builtin_builds_match_direct_generation() {
        use ioworkload::charisma::CharismaParams;
        let a = WorkloadSpec::parse("charisma:small")
            .unwrap()
            .build(9)
            .unwrap();
        let b = CharismaParams::small().generate(9);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn trace_build_reports_missing_file() {
        let e = WorkloadSpec::parse("strace:/nonexistent/x.txt")
            .unwrap()
            .build(0)
            .unwrap_err();
        assert!(e.to_string().contains("cannot build workload"), "{e}");
        assert_eq!(e.spec(), "strace:/nonexistent/x.txt");
    }

    #[test]
    fn every_synthetic_build_validates_and_is_deterministic() {
        for spec in ["web:12,0.8,64", "db:0.4,512", "mltrain:2,256"] {
            let s = WorkloadSpec::parse(spec).unwrap();
            let a = s.build(7).unwrap();
            a.validate();
            let b = s.build(7).unwrap();
            assert_eq!(a.to_text(), b.to_text(), "{spec} not deterministic");
            let c = s.build(8).unwrap();
            assert_ne!(a.to_text(), c.to_text(), "{spec} ignores the seed");
        }
    }
}
