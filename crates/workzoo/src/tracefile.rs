//! Trace ingestion: parse strace- and blkparse-style text records into
//! the [`ioworkload::Workload`] per-process demand model.
//!
//! Real traces arrive as text dumps, not as the repo's native trace
//! format. Two front-ends cover the common cases:
//!
//! * [`parse_strace`] — syscall-level records (`strace -f -ttt` style):
//!   `open`/`openat` bind fds to paths, `read`/`write` advance a
//!   per-fd offset, `pread64`/`pwrite64` carry explicit offsets,
//!   `lseek` repositions, `close` unbinds. Byte offsets and lengths
//!   are preserved exactly; the simulator maps them to blocks through
//!   the existing layout.
//! * [`parse_blktrace`] — block-level records (`blkparse` default
//!   output): `Q` (queue) actions become reads/writes of a per-device
//!   pseudo-file at `sector * 512`.
//!
//! Both preserve **dependency order**: every record lands on its
//! process (pid) in file order, and timestamp deltas between a pid's
//! records become [`Op::Compute`] think time, so the replay keeps the
//! trace's intra-process structure while the simulator re-times all
//! I/O under the configured machine, cache, and prefetcher. Lines the
//! subset grammar does not know (signals, unfinished/resumed halves,
//! unrelated syscalls, non-queue blktrace actions, summary footers)
//! are skipped; lines that *are* in the grammar but malformed fail
//! with a line number.

use std::collections::HashMap;

use ioworkload::{FileId, FileMeta, NodeId, Op, ProcId, ProcessTrace, Workload};
use simkit::SimDuration;

/// A trace line the parser recognises but cannot make sense of.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// Path (or label) of the trace being parsed.
    pub path: String,
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.path, self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

/// Per-pid accumulation state shared by both parsers.
struct PidState {
    ops: Vec<Op>,
    /// Seconds of trace time not yet emitted as compute.
    pending_gap: f64,
    last_ts: Option<f64>,
    /// Open fds: fd -> (path, current offset). strace only.
    fds: HashMap<u64, (String, u64)>,
}

impl PidState {
    fn new() -> Self {
        PidState {
            ops: Vec::new(),
            pending_gap: 0.0,
            last_ts: None,
            fds: HashMap::new(),
        }
    }

    fn observe_ts(&mut self, ts: Option<f64>) {
        if let Some(t) = ts {
            if let Some(last) = self.last_ts {
                if t > last {
                    self.pending_gap += t - last;
                }
            }
            self.last_ts = Some(t);
        }
    }

    /// Emit the accumulated think time, then the I/O op.
    fn push_io(&mut self, op: Op) {
        if self.pending_gap > 0.0 {
            self.ops
                .push(Op::Compute(SimDuration::from_secs_f64(self.pending_gap)));
            self.pending_gap = 0.0;
        }
        self.ops.push(op);
    }
}

/// Files keyed by path, materialised only when actually accessed, in
/// first-access order (dense ids).
#[derive(Default)]
struct FileTable {
    by_path: HashMap<String, u32>,
    /// (path, max end offset seen).
    files: Vec<(String, u64)>,
}

impl FileTable {
    fn touch(&mut self, path: &str, end: u64) -> FileId {
        let id = *self.by_path.entry(path.to_string()).or_insert_with(|| {
            self.files.push((path.to_string(), 0));
            (self.files.len() - 1) as u32
        });
        let max = &mut self.files[id as usize].1;
        *max = (*max).max(end);
        FileId(id)
    }
}

/// Assemble the per-pid states into a validated workload. Pids with no
/// I/O are dropped; each remaining pid gets its own node.
fn assemble(
    name: String,
    pids: Vec<u64>,
    mut states: HashMap<u64, PidState>,
    table: FileTable,
    path: &str,
) -> Result<Workload, TraceParseError> {
    let mut processes = Vec::new();
    for pid in pids {
        let st = states.remove(&pid).expect("pid state exists");
        if st.ops.iter().any(|o| !matches!(o, Op::Compute(_))) {
            let n = processes.len() as u32;
            processes.push(ProcessTrace {
                proc: ProcId(n),
                node: NodeId(n),
                ops: st.ops,
            });
        }
    }
    if processes.is_empty() {
        return Err(TraceParseError {
            path: path.to_string(),
            line: 0,
            msg: "no I/O records found".into(),
        });
    }
    let wl = Workload {
        name,
        block_size: 8192,
        nodes: processes.len() as u32,
        files: table
            .files
            .iter()
            .enumerate()
            .map(|(i, (_, size))| FileMeta {
                id: FileId(i as u32),
                size: *size,
            })
            .collect(),
        processes,
    };
    wl.validate();
    Ok(wl)
}

/// Parse strace-style text records. `path` labels error messages and
/// the workload name.
pub fn parse_strace(path: &str, text: &str) -> Result<Workload, TraceParseError> {
    let err = |line: usize, msg: String| TraceParseError {
        path: path.to_string(),
        line,
        msg,
    };
    let mut pids: Vec<u64> = Vec::new();
    let mut states: HashMap<u64, PidState> = HashMap::new();
    let mut table = FileTable::default();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // strace noise: signal deliveries and exit markers.
        if line.starts_with("---") || line.starts_with("+++") {
            continue;
        }
        let mut rest = line;

        // Optional leading pid (strace -f).
        let mut pid = 0u64;
        if let Some(tok) = first_token(rest) {
            if !tok.is_empty() && tok.bytes().all(|b| b.is_ascii_digit()) {
                pid = tok.parse().unwrap_or(0);
                rest = rest[tok.len()..].trim_start();
            }
        }
        // Optional timestamp: relative seconds (-r/-ttt) or wall clock
        // with colons (-tt).
        let mut ts = None;
        if let Some(tok) = first_token(rest) {
            if let Some(t) = parse_timestamp(tok) {
                ts = Some(t);
                rest = rest[tok.len()..].trim_start();
            }
        }

        let st = states.entry(pid).or_insert_with(|| {
            pids.push(pid);
            PidState::new()
        });
        st.observe_ts(ts);

        // Unfinished/resumed halves of interrupted syscalls: the data
        // is split across lines; keep the subset grammar simple and
        // skip both halves.
        if rest.starts_with('<') || rest.contains("<unfinished") {
            continue;
        }
        let Some(paren) = rest.find('(') else {
            continue; // not a syscall record
        };
        let name = &rest[..paren];
        if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        // Return value: after the LAST " = " (paths may contain '=').
        let Some(eq) = rest.rfind(" = ") else {
            continue;
        };
        let ret_str = rest[eq + 3..].split_whitespace().next().unwrap_or("");
        let args_str = rest[paren + 1..eq].trim().trim_end_matches(')');
        let args = split_args(args_str);
        let ret: i64 = match ret_str.parse::<i64>() {
            Ok(v) => v,
            Err(_) if ret_str == "?" => continue, // killed mid-syscall
            Err(_) => {
                // Known syscalls must have a numeric return.
                if matches!(
                    name,
                    "open"
                        | "openat"
                        | "creat"
                        | "read"
                        | "write"
                        | "pread64"
                        | "pwrite64"
                        | "pread"
                        | "pwrite"
                        | "lseek"
                        | "_llseek"
                        | "close"
                ) {
                    return Err(err(lineno, format!("bad return value {ret_str:?}")));
                }
                continue;
            }
        };

        match name {
            "open" | "openat" | "creat" => {
                if ret < 0 {
                    continue; // failed open binds nothing
                }
                let path_arg = if name == "openat" {
                    args.get(1)
                } else {
                    args.first()
                };
                let Some(p) = path_arg.map(|a| a.trim().trim_matches('"')) else {
                    return Err(err(lineno, format!("{name} without a path argument")));
                };
                st.fds.insert(ret as u64, (p.to_string(), 0));
            }
            "read" | "write" | "pread64" | "pwrite64" | "pread" | "pwrite" => {
                if ret <= 0 {
                    continue; // EOF or error: no bytes moved
                }
                let len = ret as u64;
                let fd: u64 = args
                    .first()
                    .and_then(|a| a.trim().parse().ok())
                    .ok_or_else(|| err(lineno, format!("{name} with a non-numeric fd")))?;
                let explicit_offset = if name.starts_with('p') {
                    Some(
                        args.get(3)
                            .and_then(|a| a.trim().parse::<u64>().ok())
                            .ok_or_else(|| err(lineno, format!("{name} without an offset")))?,
                    )
                } else {
                    None
                };
                // Unopened fds 0-2 are the console, not files.
                if !st.fds.contains_key(&fd) && fd <= 2 {
                    continue;
                }
                let (fpath, cur) = st
                    .fds
                    .entry(fd)
                    // A trace excerpt may start mid-stream: synthesise
                    // a pseudo-file for fds we never saw opened.
                    .or_insert_with(|| (format!("<pid{pid}:fd{fd}>"), 0));
                let offset = explicit_offset.unwrap_or(*cur);
                let file = table.touch(fpath, offset + len);
                let op = if name.contains("read") {
                    Op::Read { file, offset, len }
                } else {
                    Op::Write { file, offset, len }
                };
                if explicit_offset.is_none() {
                    *cur = offset + len;
                }
                st.push_io(op);
            }
            "lseek" | "_llseek" => {
                if ret < 0 {
                    continue;
                }
                let fd: u64 = args
                    .first()
                    .and_then(|a| a.trim().parse().ok())
                    .ok_or_else(|| err(lineno, "lseek with a non-numeric fd".into()))?;
                if let Some((_, cur)) = st.fds.get_mut(&fd) {
                    *cur = ret as u64;
                }
            }
            "close" => {
                let fd: u64 = args
                    .first()
                    .and_then(|a| a.trim().parse().ok())
                    .ok_or_else(|| err(lineno, "close with a non-numeric fd".into()))?;
                st.fds.remove(&fd);
            }
            _ => {} // unrelated syscall
        }
    }

    assemble(format!("strace:{path}"), pids, states, table, path)
}

/// Parse blkparse-style text records (`blkparse` default output):
/// `dev cpu seq time pid action rwbs sector + sectors [comm]`. Only
/// `Q` (queue) actions are replayed; each device becomes a
/// pseudo-file, `sector * 512` the byte offset.
pub fn parse_blktrace(path: &str, text: &str) -> Result<Workload, TraceParseError> {
    let err = |line: usize, msg: String| TraceParseError {
        path: path.to_string(),
        line,
        msg,
    };
    let mut pids: Vec<u64> = Vec::new();
    let mut states: HashMap<u64, PidState> = HashMap::new();
    let mut table = FileTable::default();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        // A record starts with a `maj,min` device field; anything else
        // (per-CPU summary footers, totals) is not a record.
        let is_dev = |s: &str| {
            s.split_once(',').is_some_and(|(a, b)| {
                !a.is_empty()
                    && !b.is_empty()
                    && a.bytes().all(|c| c.is_ascii_digit())
                    && b.bytes().all(|c| c.is_ascii_digit())
            })
        };
        if fields.len() < 7 || !is_dev(fields[0]) {
            continue;
        }
        let action = fields[5];
        if action != "Q" {
            continue; // only queue records carry the demand stream
        }
        let rwbs = fields[6];
        let is_write = rwbs.contains('W');
        if !is_write && !rwbs.contains('R') {
            continue; // barriers/discards/flushes
        }
        if fields.len() < 10 || fields[8] != "+" {
            return Err(err(lineno, "Q record without `sector + count`".into()));
        }
        let ts: f64 = fields[3]
            .parse()
            .map_err(|_| err(lineno, format!("bad timestamp {:?}", fields[3])))?;
        let pid: u64 = fields[4]
            .parse()
            .map_err(|_| err(lineno, format!("bad pid {:?}", fields[4])))?;
        let sector: u64 = fields[7]
            .parse()
            .map_err(|_| err(lineno, format!("bad sector {:?}", fields[7])))?;
        let sectors: u64 = fields[9]
            .parse()
            .map_err(|_| err(lineno, format!("bad sector count {:?}", fields[9])))?;
        if sectors == 0 {
            continue;
        }

        let st = states.entry(pid).or_insert_with(|| {
            pids.push(pid);
            PidState::new()
        });
        st.observe_ts(Some(ts));
        let offset = sector * 512;
        let len = sectors * 512;
        let file = table.touch(&format!("<dev {}>", fields[0]), offset + len);
        st.push_io(if is_write {
            Op::Write { file, offset, len }
        } else {
            Op::Read { file, offset, len }
        });
    }

    assemble(format!("blktrace:{path}"), pids, states, table, path)
}

/// First whitespace-delimited token of a line.
fn first_token(s: &str) -> Option<&str> {
    s.split_whitespace().next()
}

/// Parse an strace timestamp token: `1234.5678` (relative/epoch) or
/// `HH:MM:SS.ffff` (wall clock).
fn parse_timestamp(tok: &str) -> Option<f64> {
    if tok.contains(':') {
        let parts: Vec<&str> = tok.split(':').collect();
        if parts.len() != 3 {
            return None;
        }
        let h: f64 = parts[0].parse().ok()?;
        let m: f64 = parts[1].parse().ok()?;
        let s: f64 = parts[2].parse().ok()?;
        Some(h * 3600.0 + m * 60.0 + s)
    } else if tok.contains('.') {
        tok.parse().ok()
    } else {
        None
    }
}

/// Split a syscall argument list on top-level commas, respecting
/// double-quoted strings (paths and buffers may contain commas).
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut depth, mut in_str, mut escaped, mut start) = (0usize, false, false, 0usize);
    for (i, b) in s.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'(' | b'[' | b'{' if !in_str => depth += 1,
            b')' | b']' | b'}' if !in_str => depth = depth.saturating_sub(1),
            b',' if !in_str && depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() || !s.is_empty() {
        out.push(s[start..].trim());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRACE: &str = r#"
1001 0.000100 openat(AT_FDCWD, "/data/a.bin", O_RDONLY) = 3
1001 0.000400 read(3, "x"..., 8192) = 8192
1001 0.050400 read(3, "x"..., 8192) = 8192
1001 0.050600 pread64(3, "x"..., 16384, 65536) = 16384
1001 0.050900 lseek(3, 131072, SEEK_SET) = 131072
1001 0.051000 read(3, "x"..., 8192) = 8192
1001 0.051200 close(3) = 0
1002 0.000200 open("/data/b.bin", O_WRONLY|O_CREAT, 0644) = 4
1002 0.000900 write(4, "y"..., 4096) = 4096
1002 0.001100 write(4, "y"..., 4096) = 4096
--- SIGCHLD {si_signo=SIGCHLD} ---
1002 0.001300 read(0, "", 128) = 0
1002 0.001400 close(4) = 0
+++ exited with 0 +++
"#;

    #[test]
    fn strace_subset_parses_and_validates() {
        let wl = parse_strace("t.strace", STRACE).unwrap();
        wl.validate();
        assert_eq!(wl.processes.len(), 2);
        assert_eq!(wl.files.len(), 2);
        // pid 1001: read@0, read@8192 (cursor), pread@65536 (explicit,
        // cursor untouched), lseek to 131072, read@131072.
        let reads: Vec<(u64, u64)> = wl.processes[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Read { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(
            reads,
            vec![(0, 8192), (8192, 8192), (65536, 16384), (131072, 8192)]
        );
        // File size = max end offset.
        assert_eq!(wl.files[0].size, 131072 + 8192);
        assert_eq!(wl.files[1].size, 8192);
        // Timestamp deltas became compute: pid 1001 thinks ~50 ms
        // between its second and third I/O.
        let computes: Vec<u64> = wl.processes[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Compute(d) => Some(d.as_millis()),
                _ => None,
            })
            .collect();
        assert!(computes.contains(&50), "computes {computes:?}");
    }

    #[test]
    fn strace_preserves_per_process_order() {
        let wl = parse_strace("t.strace", STRACE).unwrap();
        // pid 1002's writes stay in trace order despite the
        // interleaved pid 1001 lines.
        let writes: Vec<u64> = wl.processes[1]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Write { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec![0, 4096]);
    }

    #[test]
    fn strace_without_pids_or_timestamps() {
        let text = "open(\"/x\", O_RDONLY) = 5\nread(5, \"\", 8192) = 8192\n";
        let wl = parse_strace("t", text).unwrap();
        assert_eq!(wl.processes.len(), 1);
        assert_eq!(wl.files[0].size, 8192);
        assert!(wl.processes[0]
            .ops
            .iter()
            .all(|o| !matches!(o, Op::Compute(_))));
    }

    #[test]
    fn strace_synthesises_files_for_unseen_fds() {
        // An excerpt starting mid-stream: fd 7 was opened before the
        // capture began.
        let text = "2000 read(7, \"\", 4096) = 4096\n";
        let wl = parse_strace("t", text).unwrap();
        assert_eq!(wl.files.len(), 1);
        assert_eq!(wl.files[0].size, 4096);
    }

    #[test]
    fn strace_skips_console_and_failed_io() {
        let text = "\
read(0, \"\", 128) = 5
write(1, \"out\", 3) = 3
write(2, \"err\", 3) = 3
open(\"/gone\", O_RDONLY) = -1 ENOENT (No such file)
read(3, \"\", 8192) = -1 EBADF (Bad fd)
read(9, \"\", 8192) = 8192
";
        let wl = parse_strace("t", text).unwrap();
        assert_eq!(wl.io_ops(), 1, "only the fd-9 read survives");
    }

    #[test]
    fn strace_rejects_malformed_known_syscalls() {
        let e = parse_strace("t", "read(zzz, \"\", 1) = 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("t:1:"), "{e}");
        let e = parse_strace("t", "x\nread(3, \"\", 1) = banana\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn strace_with_no_io_is_an_error() {
        let e = parse_strace("t", "# just a comment\n").unwrap_err();
        assert!(e.msg.contains("no I/O"), "{e}");
    }

    const BLKTRACE: &str = r#"
  8,0    1        1     0.000000000  3001  Q   R 2048 + 8 [app]
  8,0    1        2     0.000120000  3001  G   R 2048 + 8 [app]
  8,0    1        3     0.030000000  3001  Q  RA 4096 + 16 [app]
  8,0    2        4     0.030500000  3002  Q  WS 512 + 8 [flusher]
  8,1    2        5     0.031000000  3002  Q   W 0 + 8 [flusher]
  8,0    2        6     0.040000000  3002  C   W 512 + 8 [0]
CPU1 (8,0):
 Reads Queued:           2,       12KiB
"#;

    #[test]
    fn blktrace_subset_parses_and_validates() {
        let wl = parse_blktrace("d.blk", BLKTRACE).unwrap();
        wl.validate();
        // Two devices -> two pseudo-files; two pids -> two processes.
        assert_eq!(wl.files.len(), 2);
        assert_eq!(wl.processes.len(), 2);
        // Only the four Q records with R/W survive (G and C skipped).
        assert_eq!(wl.io_ops(), 4);
        let reads: Vec<(u64, u64)> = wl.processes[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Read { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec![(2048 * 512, 8 * 512), (4096 * 512, 16 * 512)]);
        // Timestamp delta (30 ms) became compute for pid 3001.
        assert!(wl.processes[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::Compute(d) if d.as_millis() == 30)));
    }

    #[test]
    fn blktrace_rejects_malformed_q_records() {
        let e = parse_blktrace("d", "8,0 1 1 0.0 10 Q R 2048 x 8 [a]\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_blktrace("d", "8,0 1 1 0.0 10 Q R banana + 8 [a]\n").unwrap_err();
        assert!(e.msg.contains("sector"), "{e}");
    }

    #[test]
    fn blktrace_with_no_io_is_an_error() {
        assert!(parse_blktrace("d", "CPU0 (8,0):\n").is_err());
    }

    #[test]
    fn split_args_respects_quotes_and_nesting() {
        assert_eq!(split_args("3, \"a,b\", 100"), vec!["3", "\"a,b\"", "100"]);
        assert_eq!(
            split_args("AT_FDCWD, \"/x/y\", O_RDONLY|O_CLOEXEC"),
            vec!["AT_FDCWD", "\"/x/y\"", "O_RDONLY|O_CLOEXEC"]
        );
        assert_eq!(
            split_args("{st_mode=S_IFREG, st_size=1}, 0"),
            vec!["{st_mode=S_IFREG, st_size=1}", "0"]
        );
    }
}
