//! Synthetic web-serving workload: Zipf-skewed file popularity with
//! session locality.
//!
//! The shape follows the web-server traces the predictive-prefetching
//! literature evaluates on (and that the paper's CHARISMA/Sprite pair
//! lacks): many small-to-medium files whose popularity is Zipf-skewed,
//! accessed by user *sessions* that read an entry object and then a
//! handful of related objects (pages pull their assets; users browse
//! neighbouring pages). Every file is read wholly and sequentially —
//! friendly to OBA/IS_PPM *within* a file — while the file-to-file
//! jumps carry the session structure.
//!
//! The cache-overflow knob is `files`: once `files × mean file size`
//! exceeds the aggregate cooperative cache, the Zipf tail stops
//! fitting and the linear-limit question becomes non-degenerate.

use ioworkload::util::{log_uniform, Rng64, Zipf};
use ioworkload::{FileId, FileMeta, NodeId, Op, ProcId, ProcessTrace, Workload};
use simkit::SimDuration;

/// Parameters of the web-serving generator.
#[derive(Clone, Debug)]
pub struct WebParams {
    /// User sessions replayed, round-robin across the server processes.
    pub sessions: u32,
    /// Zipf skew of the file-popularity distribution (0 = uniform;
    /// 0.6–1.0 matches observed web-object popularity).
    pub zipf_s: f64,
    /// Number of distinct files — the cache-overflow knob.
    pub files: u32,
    /// Server nodes (one server process each).
    pub nodes: u32,
    /// File size range in blocks, log-uniform (small files dominate).
    pub file_blocks: (u64, u64),
    /// Related objects fetched after a session's entry file (range).
    pub related: (u32, u32),
    /// Largest distance (in popularity rank) of a related object from
    /// the entry — the session-locality radius.
    pub locality: u64,
    /// Request size in blocks (files are read in runs of this size).
    pub request_blocks: u64,
    /// Think time between requests of one file, ms range.
    pub think_ms: (f64, f64),
    /// Gap between files of one session, ms range.
    pub file_gap_ms: (f64, f64),
    /// Gap before each session starts on its server, ms range.
    pub session_gap_ms: (f64, f64),
}

impl Default for WebParams {
    fn default() -> Self {
        WebParams {
            sessions: 64,
            zipf_s: 0.8,
            files: 256,
            nodes: 8,
            file_blocks: (2, 32),
            related: (2, 5),
            locality: 12,
            request_blocks: 4,
            think_ms: (5.0, 20.0),
            file_gap_ms: (30.0, 120.0),
            session_gap_ms: (150.0, 600.0),
        }
    }
}

impl WebParams {
    /// Generate the workload for a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        assert!(self.sessions > 0 && self.files > 1 && self.nodes > 0);
        let mut rng = Rng64::new(seed);
        let block_size = 8192u64;

        // Popularity rank r *is* file id r: rank 0 is the hottest file.
        let files: Vec<FileMeta> = (0..self.files)
            .map(|i| FileMeta {
                id: FileId(i),
                size: log_uniform(&mut rng, self.file_blocks) * block_size,
            })
            .collect();
        let zipf = Zipf::new(self.files as usize, self.zipf_s);

        let mut processes: Vec<ProcessTrace> = (0..self.nodes)
            .map(|n| ProcessTrace {
                proc: ProcId(n),
                node: NodeId(n),
                ops: Vec::new(),
            })
            .collect();

        for session in 0..self.sessions {
            let proc = (session % self.nodes) as usize;
            let ops = &mut processes[proc].ops;
            ops.push(Op::Compute(ms(&mut rng, self.session_gap_ms)));

            // Entry object by popularity, then related objects within
            // the locality radius — neighbouring ranks, wrapped.
            let entry = zipf.sample(&mut rng) as u64;
            let mut session_files = vec![entry];
            for _ in 0..rng.range_u32(self.related.0, self.related.1) {
                let hop = rng.range_u64(1, self.locality.max(1));
                session_files.push((entry + hop) % self.files as u64);
            }

            for (i, &file) in session_files.iter().enumerate() {
                if i > 0 {
                    ops.push(Op::Compute(ms(&mut rng, self.file_gap_ms)));
                }
                let size = files[file as usize].size;
                let blocks = size.div_ceil(block_size);
                let mut blk = 0u64;
                while blk < blocks {
                    let n = self.request_blocks.min(blocks - blk);
                    ops.push(Op::Compute(ms(&mut rng, self.think_ms)));
                    ops.push(Op::Read {
                        file: FileId(file as u32),
                        offset: blk * block_size,
                        len: (n * block_size).min(size - blk * block_size),
                    });
                    blk += n;
                }
            }
        }

        let wl = Workload {
            name: format!("web-{}s-{}f", self.sessions, self.files),
            block_size,
            nodes: self.nodes,
            files,
            processes,
        };
        wl.validate();
        wl
    }
}

fn ms(rng: &mut Rng64, range: (f64, f64)) -> SimDuration {
    SimDuration::from_millis_f64(rng.range_f64(range.0, range.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_validates() {
        let p = WebParams::default();
        let a = p.generate(7);
        let b = p.generate(7);
        assert_eq!(a.to_text(), b.to_text());
        for seed in 0..10 {
            p.generate(seed).validate();
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let wl = WebParams {
            sessions: 200,
            ..WebParams::default()
        }
        .generate(3);
        let mut reads_per_file = vec![0u64; wl.files.len()];
        for p in &wl.processes {
            for op in &p.ops {
                if let Op::Read { file, .. } = op {
                    reads_per_file[file.0 as usize] += 1;
                }
            }
        }
        // The hot head (lowest ranks) must dominate the cold tail.
        let head: u64 = reads_per_file[..16].iter().sum();
        let tail: u64 = reads_per_file[128..144].iter().sum();
        assert!(head > 4 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn files_knob_scales_the_working_set() {
        let small = WebParams {
            files: 64,
            ..WebParams::default()
        }
        .generate(1);
        let big = WebParams {
            files: 1024,
            ..WebParams::default()
        }
        .generate(1);
        let footprint = |wl: &Workload| wl.files.iter().map(|f| f.size).sum::<u64>();
        assert!(footprint(&big) > 8 * footprint(&small));
    }

    #[test]
    fn whole_files_read_sequentially() {
        let wl = WebParams::default().generate(5);
        // Within one process, consecutive reads of the same file are at
        // strictly increasing offsets until the file is done.
        for p in &wl.processes {
            let mut last: Option<(u32, u64)> = None;
            for op in &p.ops {
                if let Op::Read { file, offset, .. } = op {
                    if let Some((lf, lo)) = last {
                        if lf == file.0 {
                            // Later sessions may revisit a file from
                            // offset 0; within a visit reads advance.
                            assert!(
                                *offset > lo || *offset == 0,
                                "non-sequential read within a file"
                            );
                        }
                    }
                    last = Some((file.0, *offset));
                }
            }
        }
    }
}
