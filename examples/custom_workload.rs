//! Build a workload by hand and compare PAFS's truly global linear
//! prefetching with xFS's per-node approximation on a *shared* file —
//! the asymmetry at the heart of §4.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use lap::prelude::*;
use lap::simkit::SimDuration;

/// Eight nodes stream through the same large file in lockstep rounds —
/// a "broadcast" pattern, the worst case for per-node prefetching.
fn broadcast_workload(nodes: u32, file_blocks: u64) -> Workload {
    let block = 8192u64;
    let mut processes = Vec::new();
    for n in 0..nodes {
        let mut ops = Vec::new();
        let mut blk = 0;
        while blk < file_blocks {
            // Compute, then read a 4-block record.
            ops.push(Op::Compute(SimDuration::from_millis(400)));
            let len = 4.min(file_blocks - blk);
            ops.push(Op::Read {
                file: FileId(0),
                offset: blk * block,
                len: len * block,
            });
            blk += len;
        }
        processes.push(ioworkload::ProcessTrace {
            proc: ProcId(n),
            node: NodeId(n),
            ops,
        });
    }
    let wl = Workload {
        name: "broadcast-shared-file".into(),
        block_size: block,
        nodes,
        files: vec![ioworkload::FileMeta {
            id: FileId(0),
            size: file_blocks * block,
        }],
        processes,
    };
    wl.validate();
    wl
}

fn main() {
    let wl = broadcast_workload(8, 2048); // a 16 MB file read by all 8 nodes

    println!("One 16 MB file, broadcast-read by 8 nodes (Ln_Agr_IS_PPM:1, 2 MB/node):\n");
    println!(
        "{:<8} {:>14} {:>16} {:>18}",
        "system", "avg read (ms)", "prefetches", "prefetch disk reads"
    );
    for system in [CacheSystem::Pafs, CacheSystem::Xfs] {
        let mut cfg = SimConfig::pm(system, PrefetchConfig::ln_agr_is_ppm(1), 2);
        cfg.machine.nodes = 8;
        cfg.machine.disks = 4;
        let r = run_simulation(cfg, wl.clone());
        println!(
            "{:<8} {:>14.3} {:>16} {:>18}",
            system.name(),
            r.avg_read_ms,
            r.prefetch.issued,
            r.disk_reads_prefetch
        );
    }

    println!();
    println!("PAFS runs ONE prefetch stream for the file (its server sees every");
    println!("request), so the linear limit is truly global. xFS runs one stream");
    println!("per node: the same blocks are prefetched several times — the");
    println!("duplicated work behind the paper's Figures 5 and 9.");
}
