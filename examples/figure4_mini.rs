//! Regenerate a miniature of the paper's Figure 4 (average read time
//! vs cache size, CHARISMA on PAFS) at laptop scale.
//!
//! ```text
//! cargo run --release --example figure4_mini
//! ```
//!
//! For the paper-scale version of every figure and table, use the
//! harness binary: `cargo run --release -p bench --bin experiments -- all`.

use lap::prelude::*;

fn main() {
    let params = CharismaParams::small();
    let workload = params.generate(42);
    let cache_mbs = [1u64, 2, 4, 8, 16];

    let algorithms = [
        PrefetchConfig::np(),
        PrefetchConfig::oba(),
        PrefetchConfig::ln_agr_oba(),
        PrefetchConfig::is_ppm(1),
        PrefetchConfig::ln_agr_is_ppm(1),
        PrefetchConfig::is_ppm(3),
        PrefetchConfig::ln_agr_is_ppm(3),
    ];

    println!("Figure 4 (miniature) — average read time in ms, CHARISMA on PAFS");
    print!("{:<18}", "algorithm");
    for mb in cache_mbs {
        print!(" {mb:>7}MB");
    }
    println!();

    for pf in algorithms {
        print!("{:<18}", pf.paper_name());
        for mb in cache_mbs {
            let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, mb);
            cfg.machine.nodes = params.nodes;
            cfg.machine.disks = 4;
            let report = run_simulation(cfg, workload.clone());
            print!(" {:>9.3}", report.avg_read_ms);
        }
        println!();
    }

    println!();
    println!("Expected shape (paper, Figure 4): NP and OBA form the slowest group,");
    println!("IS_PPM:1/IS_PPM:3 a faster middle group, and the linear aggressive");
    println!("algorithms the fastest group.");
}
