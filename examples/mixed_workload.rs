//! Run a parallel-scientific workload and an interactive NOW-style
//! workload *concurrently* on one machine — the "many applications
//! running at once" setting the paper's introduction motivates — and
//! check that linear aggressive prefetching still pays off when the
//! disks are shared between workload classes.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use lap::ioworkload::mix;
use lap::prelude::*;

fn main() {
    // Two workload classes on the same 8-node machine.
    let scientific = CharismaParams::small().generate(42);
    let interactive = SpriteParams::small().generate(42);
    let mixed = mix::merge("charisma+sprite", vec![scientific, interactive]);

    let stats = mixed.stats();
    println!(
        "mixed workload: {} files, {} reads, {} writes on {} nodes\n",
        stats.files, stats.reads, stats.writes, mixed.nodes
    );

    println!(
        "{:<18} {:>14} {:>10} {:>12} {:>10}",
        "algorithm", "avg read (ms)", "p95 (ms)", "disk reads", "hit %"
    );
    for pf in [
        PrefetchConfig::np(),
        PrefetchConfig::oba(),
        PrefetchConfig::is_ppm(1),
        PrefetchConfig::ln_agr_oba(),
        PrefetchConfig::ln_agr_is_ppm(1),
    ] {
        let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, 2);
        cfg.machine.nodes = mixed.nodes;
        cfg.machine.disks = 4;
        let r = run_simulation(cfg, mixed.clone());
        println!(
            "{:<18} {:>14.3} {:>10.3} {:>12} {:>9.1}%",
            pf.paper_name(),
            r.avg_read_ms,
            r.read_p95_ms,
            r.disk_reads_demand + r.disk_reads_prefetch,
            r.cache.hit_ratio() * 100.0,
        );
    }

    println!();
    println!("Linear aggressive prefetching was designed for exactly this mix:");
    println!("one block in flight per *file* leaves the disks free to serve the");
    println!("other workload's files in parallel (§3.2).");
}
