//! Watch the IS_PPM predictor learn the paper's Figure 1 access
//! pattern, then drive an aggressive walk along it — the worked example
//! of §2.2, runnable.
//!
//! ```text
//! cargo run --release --example pattern_learning
//! ```

use lap::prefetch::{FilePrefetcher, IsPpm, PrefetchConfig, Request};

fn main() {
    // Figure 1's pattern (0-indexed blocks): a 2-block request, then a
    // 3-block request 3 blocks further, then a 2-block request 5 blocks
    // further, repeating.
    let requests = [
        Request::new(0, 2),
        Request::new(3, 3),
        Request::new(8, 2),
        Request::new(11, 3),
        Request::new(16, 2),
    ];

    println!("== Graph construction (Figure 2) ==");
    let mut ppm = IsPpm::new(1);
    for (t, req) in requests.iter().enumerate() {
        ppm.observe(*req);
        println!(
            "t{}: observe {:?}  ->  {} nodes, {} edges",
            t + 1,
            req,
            ppm.node_count(),
            ppm.edge_count()
        );
    }

    // "If we use the graph shown in Figure 2.t4, we could predict the
    // fifth request very easily."
    let prediction = ppm.predict_after(Request::new(11, 3), 1_000).unwrap();
    println!();
    println!("prediction after the 4th request: {prediction:?} (paper: blocks 17-18, 1-indexed)");

    println!();
    println!("== Aggressive walk (Ln_Agr_IS_PPM:1) ==");
    // A 40-block file: the walk follows the learned pattern until the
    // next predicted request would cross end-of-file.
    let mut engine = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 40);
    for req in requests {
        engine.on_demand(req);
    }
    let mut prefetched = Vec::new();
    while let Some(block) = engine.next_block(|_| false) {
        prefetched.push(block);
        engine.on_prefetch_complete(); // linear: one block at a time
    }
    println!("blocks prefetched, in order: {prefetched:?}");
    println!(
        "walk stopped at end-of-file after {} blocks ({} restarts, {} fallback blocks)",
        engine.stats().issued,
        engine.stats().restarts,
        engine.stats().issued_by_fallback,
    );

    println!();
    println!("== Order-3 predictor (Figure 3) ==");
    let mut ppm3 = IsPpm::new(3);
    let mut extended: Vec<Request> = requests.to_vec();
    extended.push(Request::new(19, 3));
    extended.push(Request::new(24, 2));
    for req in &extended {
        ppm3.observe(*req);
    }
    println!(
        "order-3 graph: {} nodes, {} edges (the two alternating contexts of Figure 3)",
        ppm3.node_count(),
        ppm3.edge_count()
    );
    let p3 = ppm3.predict_after(Request::new(24, 2), 1_000).unwrap();
    println!("order-3 prediction after (24,2): {p3:?}");
}
