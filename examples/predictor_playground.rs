//! Score every predictor on a gallery of access patterns — offline,
//! without the simulator — and dump a learned prediction graph in
//! Graphviz DOT format.
//!
//! ```text
//! cargo run --release --example predictor_playground
//! cargo run --release --example predictor_playground -- --dot > graph.dot
//! ```

use lap::ioworkload::streams::StreamKind;
use lap::prefetch::{replay, IsPpm, PrefetchConfig, Request};

fn main() {
    let dot_mode = std::env::args().any(|a| a == "--dot");

    if dot_mode {
        // Print the Figure 1 graph and exit (pipe into `dot -Tsvg`).
        let mut ppm = IsPpm::new(1);
        for (o, s) in StreamKind::Figure1.generate(1 << 20, 12, 0) {
            ppm.observe(Request::new(o, s));
        }
        print!("{}", ppm.to_dot());
        return;
    }

    let file_blocks = 1u64 << 20;
    let patterns: Vec<(&str, StreamKind)> = vec![
        ("sequential", StreamKind::Sequential { req: 4 }),
        ("strided 16/4", StreamKind::Strided { stride: 16, req: 4 }),
        ("figure 1", StreamKind::Figure1),
        (
            "backward cycle",
            StreamKind::Cycle {
                steps: vec![(-8, 2)],
            },
        ),
        (
            "noisy sequential",
            StreamKind::NoisySequential {
                req: 2,
                jump_per_mille: 50,
            },
        ),
        ("random", StreamKind::Random { max_req: 4 }),
    ];
    let configs = [
        PrefetchConfig::oba(),
        PrefetchConfig::is_ppm(1),
        PrefetchConfig::is_ppm(3),
        PrefetchConfig::is_ppm_backoff(3),
    ];

    println!("one-step prediction quality, 300 requests per pattern");
    println!("(each cell: exact-request accuracy / demand-block coverage):\n");
    print!("{:<18}", "pattern");
    for c in configs {
        print!(" {:>15}", c.paper_name());
    }
    println!();
    for (name, kind) in patterns {
        let reqs: Vec<Request> = kind
            .generate(file_blocks, 300, 42)
            .into_iter()
            .map(|(o, s)| Request::new(o, s))
            .collect();
        print!("{name:<18}");
        for c in configs {
            let score = replay::evaluate(c, file_blocks, &reqs);
            print!(
                " {:>6.1}%/{:>5.1}%",
                score.exact_accuracy() * 100.0,
                score.block_coverage() * 100.0
            );
        }
        println!();
    }

    println!();
    println!("OBA only ever guesses \"the next block\", so it never matches a");
    println!("multi-block request exactly and covers at most one block of it —");
    println!("and nothing at all once the pattern strides or walks backwards.");
    println!("The IS_PPM family learns strides, alternations and backward");
    println!("scans; the * variant (order back-off) keeps order-3 accuracy");
    println!("without its cold start.");
}
