//! Quickstart: simulate one workload under two prefetching
//! configurations and compare read performance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lap::prelude::*;

fn main() {
    // A small CHARISMA-like workload: 3 parallel applications on an
    // 8-node machine, each streaming through its own large file.
    let params = CharismaParams::small();
    let workload = params.generate(42);
    let stats = workload.stats();
    println!(
        "workload: {} ({} reads, {} writes, mean request {:.1} blocks)",
        workload.name, stats.reads, stats.writes, stats.mean_read_blocks
    );
    println!();

    // The machine: Table 1's parallel machine, shrunk to the workload.
    let machine = {
        let mut m = MachineConfig::pm();
        m.nodes = params.nodes;
        m.disks = 4;
        m
    };

    println!(
        "{:<18} {:>14} {:>10} {:>12}",
        "algorithm", "avg read (ms)", "hit %", "disk reads"
    );
    for prefetch in [
        PrefetchConfig::np(),
        PrefetchConfig::oba(),
        PrefetchConfig::is_ppm(1),
        PrefetchConfig::ln_agr_oba(),
        PrefetchConfig::ln_agr_is_ppm(1),
    ] {
        let mut config = SimConfig::pm(CacheSystem::Pafs, prefetch, 1);
        config.machine = machine;
        let report = run_simulation(config, workload.clone());
        println!(
            "{:<18} {:>14.3} {:>9.1}% {:>12}",
            prefetch.paper_name(),
            report.avg_read_ms,
            report.cache.hit_ratio() * 100.0,
            report.disk_reads_demand + report.disk_reads_prefetch,
        );
    }
    println!();
    println!("Linear aggressive prefetching (Ln_Agr_*) hides most of the disk");
    println!("latency while fetching only one block per file at a time.");
}
