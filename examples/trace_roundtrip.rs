//! Generate synthetic workloads, inspect their published
//! characteristics, and round-trip them through the text trace format.
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```

use lap::prelude::*;

fn main() {
    for (name, wl) in [
        ("CHARISMA-like (PM)", CharismaParams::small().generate(7)),
        ("Sprite-like (NOW)", SpriteParams::small().generate(7)),
    ] {
        let s = wl.stats();
        println!("{name}: {}", wl.name);
        println!(
            "  files:           {} (mean {:.1} blocks)",
            s.files, s.mean_file_blocks
        );
        println!("  reads / writes:  {} / {}", s.reads, s.writes);
        println!("  mean read size:  {:.2} blocks", s.mean_read_blocks);
        println!(
            "  inter-node sharing: {:.0}% of files",
            s.shared_file_fraction * 100.0
        );
        println!("  distinct blocks: {}", s.distinct_blocks);
        println!("  total compute:   {:.0} s", s.compute_seconds);

        // Round-trip through the line-oriented text format.
        let text = wl.to_text();
        let back = Workload::from_text(&text).expect("parse back");
        assert_eq!(back.to_text(), text);
        println!(
            "  text form:       {} lines, {} bytes (round-trips losslessly)",
            text.lines().count(),
            text.len()
        );
        println!();
    }

    println!("The CHARISMA-like workload shows heavy inter-node sharing and large");
    println!("requests; the Sprite-like one shows many small files and almost no");
    println!("sharing — the two regimes the paper's Figures 4-7 contrast.");
}
