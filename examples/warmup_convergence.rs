//! Watch the cooperative cache warm up: per-minute average read
//! latency over a run, rendered as an ASCII chart — and why the
//! harness excludes a warm-up window like the paper's warm-up trace
//! hours.
//!
//! ```text
//! cargo run --release --example warmup_convergence
//! ```

use lap::prelude::*;
use lap::simkit::SimDuration;

fn main() {
    let workload = CharismaParams::small().generate(42);

    for pf in [PrefetchConfig::np(), PrefetchConfig::ln_agr_is_ppm(1)] {
        let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, 1);
        cfg.machine.nodes = 8;
        cfg.machine.disks = 4;
        cfg.metrics_interval = SimDuration::from_secs(5);
        let report = run_simulation(cfg, workload.clone());

        println!(
            "{} — mean read latency per 5 s of simulated time",
            pf.paper_name()
        );
        let max = report
            .read_time_series
            .iter()
            .map(|b| b.mean_ms)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        for bucket in &report.read_time_series {
            if bucket.reads == 0 {
                continue;
            }
            let bar = "#".repeat((bucket.mean_ms / max * 50.0).round() as usize);
            println!(
                "  t={:>5.0}s {:>8.3} ms ({:>4} reads) {}",
                bucket.start_s, bucket.mean_ms, bucket.reads, bar
            );
        }
        println!();
    }

    println!("The first intervals are dominated by cold misses; once the cache");
    println!("and (for Ln_Agr_IS_PPM) the prediction graphs are warm, latency");
    println!("settles. The experiments harness measures only the settled part.");
}
