#!/usr/bin/env bash
# One-command CI gate. Everything runs --offline: the workspace has no
# external dependencies and must keep building from a cold registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo build --offline --workspace --all-targets
run cargo test --offline --workspace

echo "==> ci: all green"
