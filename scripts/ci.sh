#!/usr/bin/env bash
# One-command CI gate. Everything runs --offline: the workspace has no
# external dependencies and must keep building from a cold registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo build --offline --workspace --all-targets
run cargo test --offline --workspace

# Experiment-harness smoke: table1 + the devmodel ablation at small
# scale. Catches panics and degenerate results the unit tests can't —
# the binary asserts every cell is finite and did real work.
run ./target/debug/experiments --smoke

# Golden-trace freshness: the test suite passes when golden files match,
# but a stale tree (someone regenerated with UPDATE_GOLDEN and forgot to
# commit, or edited a golden by hand) must not slip through.
echo "==> golden-trace freshness"
if ! git diff --exit-code -- tests/golden; then
    echo "tests/golden is dirty — commit the regenerated files" >&2
    exit 1
fi

echo "==> ci: all green"
