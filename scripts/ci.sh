#!/usr/bin/env bash
# One-command CI gate. Everything runs --offline: the workspace has no
# external dependencies and must keep building from a cold registry.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo build --offline --workspace --all-targets
# Debug tests run with the invariant oracle enabled (CheckMode::Auto
# is on under debug_assertions), so every test is also a conservation,
# span-sum, linear-limit, degraded-safety, and liveness check.
run cargo test --offline --workspace

# Experiment-harness smoke: table1 + the devmodel, extent, faults, and
# predictors ablations at small scale. Catches panics and degenerate
# results the unit tests can't — the binary asserts every cell is
# finite and did real work, the extent ablation asserts block==extent
# for every degenerate row (extent_blocks=1 or non-aggressive
# algorithm), the faults ablation runs all seven paper configurations
# under three fault plans, asserting no demand read is lost or
# double-counted and that the aggressive walkers stand down during
# error bursts, the predictors ablation runs the registry grid,
# asserting NP covers nothing and the MITHRIL miner always mines and
# (in at least one aggressive cell) covers reads, and the zoo ablation
# runs the workload-zoo grid, asserting a history-replay predictor
# covers reads on at least one overflow workload. Also
# regenerates the benchmark snapshot for the staleness gate below,
# which doubles as two bit-identity gates: block-granularity (BENCH.json
# predates the extent machinery) and zero-fault (it predates the fault
# layer too — a plan-less run must stay byte-identical, and the golden
# freshness gate at the bottom pins tests/golden/tiny_trace.json the
# same way).
run ./target/debug/experiments --smoke --bench-out target/BENCH.json

# Chaos smoke (DESIGN.md §15): 64 seeded random fault plans, each run
# on both cache systems across all four metadata-layout × event-queue
# combinations with the invariant oracle forced on, asserting zero
# violations and bit-identical reports per plan. Always small scale;
# ~64 plans keeps this inside the smoke time budget (the full
# 500-plan sweep is `experiments chaos`).
run ./target/debug/experiments chaos --plans 64

# Benchmark-snapshot staleness: the committed BENCH.json (schema 2)
# must match what the tree produces. This is also the perf gate: the
# deterministic self-profile counters (events, pushes, depth,
# dispatches, predictor ops, cache probes) compare exactly and any
# drift hard-fails; events_per_read and mean_queue_depth get a 10%
# ratio gate; wall-clock and throughput (reads/s, events/s) are
# machine-dependent and only warn (>30% regression). Regenerate with:
#   ./target/debug/experiments --smoke --bench-out BENCH.json
run ./target/debug/lapreport bench-diff BENCH.json target/BENCH.json

# The perf table itself must render (hard-fails on a scenario without
# a perf section, i.e. a schema-1 snapshot sneaking back in), and a
# profiled run must work end to end from the CLI.
run ./target/debug/lapreport perf target/BENCH.json
run ./target/debug/lapsim --workload charisma --cache-mb 4 --profile

# Allocation gate: with the counting allocator compiled in, the event
# loop must stay allocation-free enough that a simulated read costs a
# single-digit number of heap allocations (docs/PERFORMANCE.md). The
# scratch-buffer reuse in the engines is what keeps this low; a
# regression here means a hot path started allocating per event. The
# ceiling (10) is ~4x the current 2.3 allocs/read — loose enough for
# honest growth, tight enough to catch a per-event Vec reappearing.
run cargo build --offline --features count-alloc --bin lapsim
echo "==> count-alloc ceiling"
apr="$(./target/debug/lapsim --workload charisma --scale small --system pafs \
    --algo ln_agr_is_ppm:1 --profile 2>/dev/null \
    | sed -n 's/.*(\([0-9.]*\) per read, count-alloc).*/\1/p')"
if [ -z "$apr" ]; then
    echo "count-alloc gate: no allocations line in lapsim --profile output" >&2
    exit 1
fi
echo "    allocs per read: $apr (ceiling 10)"
if ! awk -v a="$apr" 'BEGIN { exit !(a <= 10) }'; then
    echo "count-alloc gate: $apr allocs per simulated read exceeds the ceiling of 10" >&2
    exit 1
fi
# Rebuild without the feature so later gates exercise the default
# allocator (and the feature never leaks into the other binaries).
run cargo build --offline --bin lapsim

# Parallel-sweep determinism: the worker pool must not leak scheduling
# into results — a 1-worker and an 8-worker run of the same ablations
# must be byte-identical (bench::par_map writes results by job index).
echo "==> sweep worker byte-diff (1 vs 8 workers)"
rm -rf target/ci_sweep_w1 target/ci_sweep_w8
./target/debug/experiments devmodel extent --scale small --workers 1 \
    --out target/ci_sweep_w1 > /dev/null
./target/debug/experiments devmodel extent --scale small --workers 8 \
    --out target/ci_sweep_w8 > /dev/null
run diff -r target/ci_sweep_w1 target/ci_sweep_w8

# Artifact round-trip: simulate with tracing + metrics on, then make
# lapreport digest both. Exercises the span accounting end to end —
# lapreport exits non-zero if the breakdown stops summing to the mean
# read time or a metric key disappears (schema drift).
run ./target/debug/lapsim --workload charisma --system pafs --algo ln_agr_is_ppm:1 \
    --cache-mb 4 --trace-out target/ci_trace.json --metrics-out target/ci_metrics.csv
run ./target/debug/lapsim --workload sprite --system xfs --algo oba \
    --cache-mb 2 --trace-sample 8 --trace-out target/ci_trace_sampled.json \
    --metrics-out target/ci_metrics_sprite.csv
run ./target/debug/lapreport metrics target/ci_metrics.csv target/ci_metrics_sprite.csv
echo "==> lapreport metrics --json"
./target/debug/lapreport metrics target/ci_metrics.csv --json > target/ci_report.json
run ./target/debug/lapreport trace target/ci_trace.json
run ./target/debug/lapreport trace target/ci_trace_sampled.json

# Workload-zoo round trip: a registry spec flows through lapgen to a
# trace file and back through lapsim, and the strace front-end ingests
# the committed fixture end to end (parse -> replay). The fixture's
# parse output itself is pinned by tests/golden/strace_small.trace and
# the golden-freshness gate below.
run ./target/debug/lapgen web:8,0.8,64 --seed 7 -o target/ci_web.trace
run ./target/debug/lapsim --trace target/ci_web.trace --machine now --cache-mb 1
run ./target/debug/lapsim --workload strace:tests/golden/strace_small.txt \
    --machine now --cache-mb 1
run ./target/debug/experiments mithril-sweep --workload mltrain:2,256 --seed 42

# Doc-flag drift: every `--flag` a doc references must be printed by
# one of the tools' --help (or belong to the cargo/git whitelist).
# Catches docs that advertise a renamed or removed CLI flag.
echo "==> doc-flag drift (DESIGN.md EXPERIMENTS.md README.md docs/CALIBRATION.md docs/PERFORMANCE.md)"
helps="$(./target/debug/lapsim --help 2>&1 || true)
$(./target/debug/experiments --help 2>&1 || true)
$(./target/debug/lapreport --help 2>&1 || true)
$(./target/debug/lapgen --help 2>&1 || true)"
known_other="--release --offline --workspace --all-targets --all --check --exit-code --bench --bin --example --test --nocapture --features"
drift=0
for f in $(grep -ohE -- '--[a-z][a-z-]+' DESIGN.md EXPERIMENTS.md README.md docs/CALIBRATION.md docs/PERFORMANCE.md | sort -u); do
    case " $known_other " in *" $f "*) continue ;; esac
    if ! printf '%s' "$helps" | grep -qF -- "$f"; then
        echo "doc-flag drift: $f is referenced in the docs but no tool's --help prints it" >&2
        drift=1
    fi
done
[ "$drift" -eq 0 ] || exit 1

# Doc-subcommand drift, same idea for `lapreport X`: every subcommand
# the docs mention must appear in lapreport's usage text.
echo "==> lapreport-subcommand drift"
lapreport_usage="$(./target/debug/lapreport --help 2>&1 || true)"
for sub in $(grep -ohE 'lapreport [a-z][a-z-]+' DESIGN.md EXPERIMENTS.md README.md docs/CALIBRATION.md docs/PERFORMANCE.md | awk '{print $2}' | sort -u); do
    if ! printf '%s' "$lapreport_usage" | grep -qE "lapreport $sub\b"; then
        echo "doc drift: docs reference 'lapreport $sub' but usage doesn't list it" >&2
        drift=1
    fi
done
[ "$drift" -eq 0 ] || exit 1

# Golden-trace freshness: the test suite passes when golden files match,
# but a stale tree (someone regenerated with UPDATE_GOLDEN and forgot to
# commit, or edited a golden by hand) must not slip through.
echo "==> golden-trace freshness"
if ! git diff --exit-code -- tests/golden; then
    echo "tests/golden is dirty — commit the regenerated files" >&2
    exit 1
fi

echo "==> ci: all green"
