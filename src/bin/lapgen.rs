//! `lapgen` — generate synthetic workload traces in the text format.
//!
//! ```text
//! lapgen charisma --seed 42 --scale small -o charisma.trace
//! lapgen sprite  --seed 7  --scale paper -o sprite.trace
//! lapgen web:64,0.8,256 -o web.trace    # any workload-registry spec
//! lapgen strace:app.strace -o app.trace # convert a text trace
//! lapgen charisma --stats          # print workload statistics only
//! ```

use std::fs;
use std::process::exit;

use lap::workzoo::{registry_help, WorkloadSpec};

fn usage() -> ! {
    eprintln!("usage: lapgen <SPEC> [--seed N] [--scale small|paper] [-o FILE] [--stats]");
    eprintln!();
    eprintln!("SPEC is a workload-registry spec (bare charisma/sprite pick up --scale):");
    eprint!("{}", registry_help());
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(kind) = args.next() else { usage() };
    let mut seed = 42u64;
    let mut scale = "small".to_string();
    let mut out: Option<String> = None;
    let mut stats_only = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => scale = args.next().unwrap_or_else(|| usage()),
            "-o" | "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--stats" => stats_only = true,
            _ => usage(),
        }
    }

    let spec = WorkloadSpec::parse_cli(&kind, &scale).unwrap_or_else(|e| {
        // The error's Display carries the full registry listing.
        eprint!("bad workload spec: {e}");
        exit(2);
    });
    let workload = spec.build(seed).unwrap_or_else(|e| {
        eprintln!("bad workload spec: {e}");
        exit(2);
    });

    let s = workload.stats();
    eprintln!(
        "{}: {} files (mean {:.1} blk), {} reads / {} writes, mean read {:.2} blk, sharing {:.0}%, compute {:.0}s",
        workload.name,
        s.files,
        s.mean_file_blocks,
        s.reads,
        s.writes,
        s.mean_read_blocks,
        s.shared_file_fraction * 100.0,
        s.compute_seconds
    );
    if stats_only {
        return;
    }

    let text = workload.to_text();
    match out {
        Some(path) => {
            fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            eprintln!("wrote {} ({} lines)", path, text.lines().count());
        }
        None => print!("{text}"),
    }
}
