//! `lapreport` — offline analysis of `lapsim` / `experiments` artifacts.
//!
//! Consumes the files the simulators already emit and renders the
//! paper-style tables without re-running anything:
//!
//! ```text
//! # Per-config read-time breakdown + prefetch quality + disk stats
//! # from one or more `--metrics-out` CSVs:
//! lapreport metrics metrics_a.csv metrics_b.csv
//! lapreport metrics metrics_a.csv --json       # regression-diffable
//!
//! # Skim a Chrome trace produced with `--trace-out`:
//! lapreport trace trace.json
//!
//! # Compare two BENCH.json files (wall-clock warns, counters gate):
//! lapreport bench-diff BENCH.json new.json
//!
//! # Render the simulator self-profile of a schema-2 BENCH.json:
//! lapreport perf BENCH.json
//!
//! # Summarize a chaos-sweep CSV (experiments chaos --out DIR):
//! lapreport chaos chaos.csv
//! ```
//!
//! The `metrics` subcommand hard-fails on missing metric keys: a
//! renamed or dropped metric is schema drift, and this tool is the
//! tripwire that catches it in CI. The `perf` subcommand applies the
//! same rule to the `perf` section of BENCH.json.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: lapreport metrics FILE... [--json]");
    eprintln!("       lapreport trace FILE");
    eprintln!("       lapreport bench-diff OLD NEW");
    eprintln!("       lapreport perf FILE...");
    eprintln!("       lapreport chaos FILE");
    exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let rest = &argv[1..];
    let code = match cmd.as_str() {
        "metrics" => cmd_metrics(rest),
        "trace" => cmd_trace(rest),
        "bench-diff" => cmd_bench_diff(rest),
        "perf" => cmd_perf(rest),
        "chaos" => cmd_chaos(rest),
        "-h" | "--help" => usage(),
        _ => usage(),
    };
    exit(code);
}

// ---------------------------------------------------------------------------
// metrics CSV model
// ---------------------------------------------------------------------------

/// One parsed `--metrics-out` CSV: a `metric -> value` map plus the
/// path for error messages.
struct MetricsFile {
    path: String,
    map: HashMap<String, String>,
}

impl MetricsFile {
    fn load(path: &str) -> Result<MetricsFile, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
        let mut map = HashMap::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 && line == "metric,value" {
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once(',') else {
                return Err(format!(
                    "{path}:{}: not a metric,value row: {line:?}",
                    i + 1
                ));
            };
            map.insert(k.to_string(), v.to_string());
        }
        if map.is_empty() {
            return Err(format!("{path}: no metrics found"));
        }
        Ok(MetricsFile {
            path: path.to_string(),
            map,
        })
    }

    /// A required metric as text; missing keys are schema drift and
    /// abort the report.
    fn text(&self, key: &str) -> Result<&str, String> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("{}: missing metric {key:?} (schema drift?)", self.path))
    }

    /// A required numeric metric.
    fn num(&self, key: &str) -> Result<f64, String> {
        let v = self.text(key)?;
        v.parse()
            .map_err(|_| format!("{}: metric {key:?} is not numeric: {v:?}", self.path))
    }

    /// An optional numeric metric (used to probe per-disk rows).
    fn opt_num(&self, key: &str) -> Option<f64> {
        self.map.get(key).and_then(|v| v.parse().ok())
    }
}

/// The ten additive read-latency components, in display order.
/// Each is a histogram whose per-read mean (in µs) is the component's
/// contribution to the average read time.
const SPAN_COMPONENTS: [(&str, &str); 10] = [
    ("span.cache_lookup_us", "lookup"),
    ("span.queue_us", "queue"),
    ("span.failover_us", "failover"),
    ("span.seek_us", "seek"),
    ("span.rotation_us", "rot"),
    ("span.disk_transfer_us", "disk-xfer"),
    ("span.retry_us", "retry"),
    ("span.coordination_us", "coord"),
    ("span.network_us", "network"),
    ("span.transfer_us", "deliver"),
];

/// Everything `lapreport metrics` derives from one CSV.
struct ConfigReport {
    label: String,
    workload: String,
    reads: u64,
    /// Per-component mean contribution, ms per read (display order).
    parts_ms: Vec<f64>,
    sum_ms: f64,
    read_mean_ms: f64,
    outcomes: Outcomes,
    coverage: f64,
    accuracy: f64,
    timeliness: f64,
    late_slack_ms: f64,
    pred: PredRow,
    faults: FaultRow,
    disks: Vec<DiskRow>,
}

/// The `pred.*` rows: the configured predictor's registry name and its
/// model counters. Hard-failing like the fault block — every simulation
/// exports the full schema (zeros for NP), so a missing key is drift.
struct PredRow {
    name: String,
    table_size: u64,
    emits: u64,
    hits: u64,
    mined: u64,
}

/// The `fault.*` counters (all-zero for fault-free runs — the schema
/// is identical, so missing keys are drift even without a plan).
struct FaultRow {
    injected: u64,
    retries: u64,
    failovers: u64,
    disk_outages: u64,
    node_outages: u64,
    net_lost: u64,
    net_delayed: u64,
    prefetch_suppressed: u64,
    degraded_s: f64,
    /// Per-node degraded residency, probed optionally (only nodes with
    /// nonzero residency are exported).
    node_degraded_s: Vec<(usize, f64)>,
}

struct Outcomes {
    demand_hit: u64,
    covered: u64,
    late: u64,
    miss: u64,
}

struct DiskRow {
    index: usize,
    queue_len: f64,
    utilization: f64,
    completed: f64,
    reordered: f64,
    cancelled: f64,
    waited_s: f64,
}

/// Sum check tolerance: components sum to the per-request latency
/// exactly in integer nanoseconds, but `read.latency_ms` is a
/// streaming f64 mean, so allow small relative drift.
fn sum_matches(sum_ms: f64, mean_ms: f64) -> bool {
    (sum_ms - mean_ms).abs() <= 1e-3_f64.max(mean_ms.abs() * 1e-3)
}

fn analyze(f: &MetricsFile) -> Result<ConfigReport, String> {
    let reads = f.num("read.latency_ms.count")? as u64;
    let mut parts_ms = Vec::with_capacity(SPAN_COMPONENTS.len());
    for (key, _) in SPAN_COMPONENTS {
        let count = f.num(&format!("{key}.count"))? as u64;
        if count != reads {
            return Err(format!(
                "{}: {key}.count = {count} but read.latency_ms.count = {reads}; \
                 span accounting out of sync",
                f.path
            ));
        }
        parts_ms.push(f.num(&format!("{key}.mean_us"))? / 1e3);
    }
    let sum_ms: f64 = parts_ms.iter().sum();
    let read_mean_ms = f.num("read.latency_ms.mean")?;

    let outcomes = Outcomes {
        demand_hit: f.num("span.outcome_demand_hit")? as u64,
        covered: f.num("span.outcome_covered_by_prefetch")? as u64,
        late: f.num("span.outcome_late_prefetch")? as u64,
        miss: f.num("span.outcome_miss")? as u64,
    };
    let used = f.num("cache.prefetch_used")? + f.num("prefetch.absorbed_in_flight")?;
    let wasted = f.num("cache.prefetch_wasted")?;
    let covered = outcomes.covered as f64;
    let late = outcomes.late as f64;
    let coverage = if reads == 0 {
        0.0
    } else {
        (covered + late) / reads as f64
    };
    let accuracy = if used + wasted == 0.0 {
        0.0
    } else {
        used / (used + wasted)
    };
    let timeliness = if covered + late == 0.0 {
        0.0
    } else {
        covered / (covered + late)
    };
    let late_slack_ms = f.num("prefetch.late_slack_us.mean_us")? / 1e3;

    let pred = PredRow {
        name: f.text("pred.name")?.to_string(),
        table_size: f.num("pred.table_size")? as u64,
        emits: f.num("pred.emits")? as u64,
        hits: f.num("pred.hits")? as u64,
        mined: f.num("pred.mined")? as u64,
    };

    let mut node_degraded_s = Vec::new();
    for n in 0.. {
        match f.opt_num(&format!("fault.node{n}.degraded_s")) {
            Some(v) => node_degraded_s.push((n, v)),
            // The exporter skips zero-residency nodes, so the rows need
            // not be contiguous — probe a generous range past a gap.
            None if n < 4096 => continue,
            None => break,
        }
    }
    let faults = FaultRow {
        injected: f.num("fault.injected")? as u64,
        retries: f.num("fault.retries")? as u64,
        failovers: f.num("fault.failovers")? as u64,
        disk_outages: f.num("fault.disk_outages")? as u64,
        node_outages: f.num("fault.node_outages")? as u64,
        net_lost: f.num("fault.net_lost")? as u64,
        net_delayed: f.num("fault.net_delayed")? as u64,
        prefetch_suppressed: f.num("fault.prefetch_suppressed")? as u64,
        degraded_s: f.num("fault.degraded_s")?,
        node_degraded_s,
    };

    let mut disks = Vec::new();
    while let Some(completed) = f.opt_num(&format!("disk{}.completed", disks.len())) {
        let i = disks.len();
        disks.push(DiskRow {
            index: i,
            queue_len: f.num(&format!("disk{i}.queue_len"))?,
            utilization: f.num(&format!("disk{i}.utilization"))?,
            completed,
            reordered: f.num(&format!("disk{i}.reordered"))?,
            cancelled: f.num(&format!("disk{i}.cancelled"))?,
            waited_s: f.num(&format!("disk{i}.waited_s"))?,
        });
    }
    if disks.is_empty() {
        return Err(format!("{}: no disk0.* metrics (schema drift?)", f.path));
    }

    Ok(ConfigReport {
        label: f.text("sim.label")?.to_string(),
        workload: f.text("sim.workload")?.to_string(),
        reads,
        parts_ms,
        sum_ms,
        read_mean_ms,
        outcomes,
        coverage,
        accuracy,
        timeliness,
        late_slack_ms,
        pred,
        faults,
        disks,
    })
}

fn cmd_metrics(args: &[String]) -> i32 {
    let mut json = false;
    let mut paths = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            _ if a.starts_with('-') => usage(),
            _ => paths.push(a.as_str()),
        }
    }
    if paths.is_empty() {
        usage();
    }
    let mut reports = Vec::new();
    for p in paths {
        let file = match MetricsFile::load(p) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("lapreport: {e}");
                return 1;
            }
        };
        match analyze(&file) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("lapreport: {e}");
                return 1;
            }
        }
    }
    if json {
        println!("{}", render_json(&reports));
    } else {
        print!("{}", render_tables(&reports));
    }
    if reports
        .iter()
        .all(|r| sum_matches(r.sum_ms, r.read_mean_ms))
    {
        0
    } else {
        eprintln!("lapreport: span breakdown does not sum to the mean read time");
        1
    }
}

fn render_tables(reports: &[ConfigReport]) -> String {
    let mut out = String::new();
    let wl = reports
        .iter()
        .map(|r| r.label.len() + r.workload.len() + 1)
        .max()
        .unwrap_or(6)
        .max(6);

    let _ = writeln!(out, "read-time breakdown (ms per read)");
    let _ = write!(out, "  {:<wl$} {:>9}", "config", "reads");
    for (_, short) in SPAN_COMPONENTS {
        let _ = write!(out, " {short:>9}");
    }
    let _ = writeln!(out, " {:>9} {:>9} {:>5}", "sum", "read", "check");
    for r in reports {
        let _ = write!(
            out,
            "  {:<wl$} {:>9}",
            format!("{}@{}", r.label, r.workload),
            r.reads
        );
        for p in &r.parts_ms {
            let _ = write!(out, " {p:>9.4}");
        }
        let check = if sum_matches(r.sum_ms, r.read_mean_ms) {
            "ok"
        } else {
            "DRIFT"
        };
        let _ = writeln!(out, " {:>9.4} {:>9.4} {check:>5}", r.sum_ms, r.read_mean_ms);
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "prefetch outcome per read");
    let _ = writeln!(
        out,
        "  {:<wl$} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "config", "hit", "covered", "late", "miss", "coverage", "accuracy", "timely", "slack-ms"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "  {:<wl$} {:>9} {:>9} {:>9} {:>9} {:>8.4} {:>8.4} {:>8.4} {:>10.4}",
            format!("{}@{}", r.label, r.workload),
            r.outcomes.demand_hit,
            r.outcomes.covered,
            r.outcomes.late,
            r.outcomes.miss,
            r.coverage,
            r.accuracy,
            r.timeliness,
            r.late_slack_ms
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "predictor");
    let _ = writeln!(
        out,
        "  {:<wl$} {:>16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "config", "predictor", "coverage", "accuracy", "timely", "table", "emits", "mined"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "  {:<wl$} {:>16} {:>8.4} {:>8.4} {:>8.4} {:>8} {:>8} {:>8}",
            format!("{}@{}", r.label, r.workload),
            r.pred.name,
            r.coverage,
            r.accuracy,
            r.timeliness,
            r.pred.table_size,
            r.pred.emits,
            r.pred.mined
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "faults");
    let _ = writeln!(
        out,
        "  {:<wl$} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "config",
        "injected",
        "retries",
        "failovers",
        "disk-out",
        "node-out",
        "net-lost",
        "net-dly",
        "pf-supp",
        "degraded-s"
    );
    for r in reports {
        let f = &r.faults;
        let _ = writeln!(
            out,
            "  {:<wl$} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10.3}",
            format!("{}@{}", r.label, r.workload),
            f.injected,
            f.retries,
            f.failovers,
            f.disk_outages,
            f.node_outages,
            f.net_lost,
            f.net_delayed,
            f.prefetch_suppressed,
            f.degraded_s
        );
        for (n, s) in &f.node_degraded_s {
            let _ = writeln!(out, "  {:<wl$} {:>8}   node {n} degraded {s:.3} s", "", "");
        }
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "disk queues");
    let _ = writeln!(
        out,
        "  {:<wl$} {:>5} {:>9} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "config", "disk", "completed", "util", "queue-len", "reordered", "cancelled", "waited-s"
    );
    for r in reports {
        for d in &r.disks {
            let _ = writeln!(
                out,
                "  {:<wl$} {:>5} {:>9} {:>6.4} {:>9.4} {:>9} {:>9} {:>9.4}",
                format!("{}@{}", r.label, r.workload),
                d.index,
                d.completed as u64,
                d.utilization,
                d.queue_len,
                d.reordered as u64,
                d.cancelled as u64,
                d.waited_s
            );
        }
    }
    out
}

/// JSON floats in shortest-roundtrip form so two runs of the same
/// simulation diff byte-identically.
fn render_json(reports: &[ConfigReport]) -> String {
    let mut out = String::from("{\"schema\":1,\"configs\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n {{\"label\":\"{}\",\"workload\":\"{}\",\"reads\":{},\"breakdown_ms\":{{",
            r.label, r.workload, r.reads
        );
        for (j, ((key, _), ms)) in SPAN_COMPONENTS.iter().zip(&r.parts_ms).enumerate() {
            let short = key.trim_start_matches("span.").trim_end_matches("_us");
            let _ = write!(out, "{}\"{short}\":{ms}", if j > 0 { "," } else { "" });
        }
        let _ = write!(
            out,
            "}},\"sum_ms\":{},\"read_mean_ms\":{},\"sum_ok\":{},",
            r.sum_ms,
            r.read_mean_ms,
            sum_matches(r.sum_ms, r.read_mean_ms)
        );
        let _ = write!(
            out,
            "\"outcomes\":{{\"demand_hit\":{},\"covered_by_prefetch\":{},\"late_prefetch\":{},\"miss\":{}}},",
            r.outcomes.demand_hit, r.outcomes.covered, r.outcomes.late, r.outcomes.miss
        );
        let _ = write!(
            out,
            "\"coverage\":{},\"accuracy\":{},\"timeliness\":{},\"late_slack_ms\":{},",
            r.coverage, r.accuracy, r.timeliness, r.late_slack_ms
        );
        let p = &r.pred;
        let _ = write!(
            out,
            "\"predictor\":{{\"name\":\"{}\",\"table_size\":{},\"emits\":{},\"hits\":{},\"mined\":{}}},",
            p.name, p.table_size, p.emits, p.hits, p.mined
        );
        let f = &r.faults;
        let _ = write!(
            out,
            "\"faults\":{{\"injected\":{},\"retries\":{},\"failovers\":{},\"disk_outages\":{},\"node_outages\":{},\"net_lost\":{},\"net_delayed\":{},\"prefetch_suppressed\":{},\"degraded_s\":{},\"node_degraded_s\":[",
            f.injected,
            f.retries,
            f.failovers,
            f.disk_outages,
            f.node_outages,
            f.net_lost,
            f.net_delayed,
            f.prefetch_suppressed,
            f.degraded_s
        );
        for (j, (n, sdeg)) in f.node_degraded_s.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"node\":{n},\"degraded_s\":{sdeg}}}",
                if j > 0 { "," } else { "" }
            );
        }
        out.push_str("]},");
        let _ = write!(out, "\"disks\":[");
        for (j, d) in r.disks.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"disk\":{},\"completed\":{},\"utilization\":{},\"queue_len\":{},\"reordered\":{},\"cancelled\":{},\"waited_s\":{}}}",
                if j > 0 { "," } else { "" },
                d.index,
                d.completed as u64,
                d.utilization,
                d.queue_len,
                d.reordered as u64,
                d.cancelled as u64,
                d.waited_s
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n]}");
    out
}

// ---------------------------------------------------------------------------
// trace skim
// ---------------------------------------------------------------------------

/// Pull a `"key":"string"` field out of one trace line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Pull a `"key":number` field out of one trace line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let tail = &line[start..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn cmd_trace(args: &[String]) -> i32 {
    let [path] = args else { usage() };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lapreport: {path}: cannot read: {e}");
            return 1;
        }
    };

    // The exporter writes one event per line; scan without a JSON
    // parser so multi-hundred-MB traces stream through cheaply.
    let mut track_names: HashMap<u64, String> = HashMap::new();
    let mut instants: HashMap<String, u64> = HashMap::new();
    // tid -> (open service begin ts, busy us, spans)
    let mut busy: HashMap<u64, (Option<f64>, f64, u64)> = HashMap::new();
    let mut counters_max: HashMap<String, f64> = HashMap::new();
    let mut events = 0u64;
    let mut last_ts = 0f64;

    for line in text.lines() {
        let line = line.trim_start_matches([',', ' ']);
        if !line.starts_with('{') {
            continue;
        }
        let Some(ph) = str_field(line, "ph") else {
            continue;
        };
        let name = str_field(line, "name").unwrap_or("?");
        events += 1;
        if let Some(ts) = num_field(line, "ts") {
            last_ts = last_ts.max(ts);
        }
        match ph {
            "M" => {
                if name == "thread_name" {
                    if let Some(tid) = num_field(line, "tid") {
                        // args.name is the last "name": field on the line.
                        let track = line
                            .rfind("\"name\":\"")
                            .map(|i| {
                                let s = &line[i + 8..];
                                &s[..s.find('"').unwrap_or(s.len())]
                            })
                            .unwrap_or("?");
                        track_names.insert(tid as u64, track.to_string());
                    }
                }
                events -= 1; // metadata, not a sim event
            }
            "i" => *instants.entry(name.to_string()).or_insert(0) += 1,
            "B" => {
                if let (Some(tid), Some(ts)) = (num_field(line, "tid"), num_field(line, "ts")) {
                    busy.entry(tid as u64).or_insert((None, 0.0, 0)).0 = Some(ts);
                }
            }
            "E" => {
                if let (Some(tid), Some(ts)) = (num_field(line, "tid"), num_field(line, "ts")) {
                    let e = busy.entry(tid as u64).or_insert((None, 0.0, 0));
                    if let Some(b) = e.0.take() {
                        e.1 += ts - b;
                        e.2 += 1;
                    }
                }
            }
            "C" => {
                // Counter args hold a single numeric field whose key
                // varies ("len", "pending", ...): take whatever it is.
                if let Some(i) = line.find("\"args\":{\"") {
                    let tail = &line[i + 9..];
                    if let Some((key, _)) = tail.split_once("\":") {
                        if let Some(v) = num_field(&line[i..], key) {
                            let m = counters_max.entry(name.to_string()).or_insert(0.0);
                            *m = m.max(v);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    println!("trace: {path}");
    println!("  events      {events}");
    println!("  span        {:.3} ms of simulated time", last_ts / 1e3);
    if !busy.is_empty() {
        println!("  service tracks (B/E pairs):");
        let mut tids: Vec<_> = busy.keys().copied().collect();
        tids.sort_unstable();
        for tid in tids {
            let (_, us, n) = busy[&tid];
            let name = track_names
                .get(&tid)
                .cloned()
                .unwrap_or_else(|| format!("tid {tid}"));
            println!("    {name:<12} {n:>8} services  busy {:>10.3} ms", us / 1e3);
        }
    }
    if !counters_max.is_empty() {
        println!("  counter peaks:");
        let mut names: Vec<_> = counters_max.keys().cloned().collect();
        names.sort();
        for n in names {
            println!("    {n:<20} max {}", counters_max[&n]);
        }
    }
    if !instants.is_empty() {
        println!("  instants:");
        let mut rows: Vec<_> = instants.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (name, n) in rows {
            println!("    {name:<20} {n}");
        }
    }
    0
}

// ---------------------------------------------------------------------------
// bench-diff
// ---------------------------------------------------------------------------

/// One scenario row parsed out of a BENCH.json file.
#[derive(Debug, PartialEq)]
struct BenchRow {
    avg_read_ms: f64,
    reads: u64,
    disk_accesses: u64,
    /// The schema-2 `perf` section; `None` for schema-1 files, which
    /// `bench-diff` tolerates (with a note) and `perf` rejects.
    perf: Option<PerfRow>,
}

/// The schema-2 `perf` section of one scenario: deterministic integer
/// counters (compared exactly), deterministic ratios (ratio-gated),
/// and wall-clock throughput (warn-only).
#[derive(Debug, PartialEq)]
struct PerfRow {
    events: u64,
    queue_pushes: u64,
    peak_queue_depth: u64,
    station_dispatches: u64,
    pred_lookups: u64,
    pred_updates: u64,
    cache_probes: u64,
    events_per_read: f64,
    mean_queue_depth: f64,
    wall_ms: f64,
    reads_per_sec: f64,
    events_per_sec: f64,
    /// Present only when the writer was built with `count-alloc`.
    allocs_per_read: Option<f64>,
}

impl PerfRow {
    /// `(label, value)` pairs of the exactly-gated integer counters.
    fn exact_counters(&self) -> [(&'static str, u64); 7] {
        [
            ("events", self.events),
            ("queue_pushes", self.queue_pushes),
            ("peak_queue_depth", self.peak_queue_depth),
            ("station_dispatches", self.station_dispatches),
            ("pred_lookups", self.pred_lookups),
            ("pred_updates", self.pred_updates),
            ("cache_probes", self.cache_probes),
        ]
    }
}

fn load_perf(line: &str, path: &str, name: &str) -> Result<Option<PerfRow>, String> {
    if !line.contains("\"perf\":") {
        return Ok(None);
    }
    // Once a perf section exists, every key is mandatory: a missing
    // counter is schema drift, the same hard error `metrics` raises.
    let need = |key: &str| {
        num_field(line, key).ok_or_else(|| format!("{path}: scenario {name:?} missing perf.{key}"))
    };
    Ok(Some(PerfRow {
        events: need("events")? as u64,
        queue_pushes: need("queue_pushes")? as u64,
        peak_queue_depth: need("peak_queue_depth")? as u64,
        station_dispatches: need("station_dispatches")? as u64,
        pred_lookups: need("pred_lookups")? as u64,
        pred_updates: need("pred_updates")? as u64,
        cache_probes: need("cache_probes")? as u64,
        events_per_read: need("events_per_read")?,
        mean_queue_depth: need("mean_queue_depth")?,
        wall_ms: need("wall_ms")?,
        reads_per_sec: need("reads_per_sec")?,
        events_per_sec: need("events_per_sec")?,
        allocs_per_read: num_field(line, "allocs_per_read"),
    }))
}

fn load_bench(path: &str) -> Result<Vec<(String, BenchRow)>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut rows = Vec::new();
    // The writer puts one scenario object per line; scan for them.
    for line in text.lines() {
        let Some(name) = str_field(line, "name") else {
            continue;
        };
        let row = BenchRow {
            avg_read_ms: num_field(line, "avg_read_ms")
                .ok_or_else(|| format!("{path}: scenario {name:?} missing avg_read_ms"))?,
            reads: num_field(line, "reads")
                .ok_or_else(|| format!("{path}: scenario {name:?} missing reads"))?
                as u64,
            disk_accesses: num_field(line, "disk_accesses")
                .ok_or_else(|| format!("{path}: scenario {name:?} missing disk_accesses"))?
                as u64,
            perf: load_perf(line, path, name)?,
        };
        rows.push((name.to_string(), row));
    }
    if rows.is_empty() {
        return Err(format!("{path}: no scenarios found"));
    }
    Ok(rows)
}

fn cmd_bench_diff(args: &[String]) -> i32 {
    let [old_path, new_path] = args else { usage() };
    let (old, new) = match (load_bench(old_path), load_bench(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("lapreport: {e}");
            return 1;
        }
    };
    let old_map: HashMap<_, _> = old.iter().map(|(n, r)| (n.as_str(), r)).collect();
    let new_map: HashMap<_, _> = new.iter().map(|(n, r)| (n.as_str(), r)).collect();
    let mut drift = false;
    let mut schema1_noted = false;
    for (name, o) in &old {
        match new_map.get(name.as_str()) {
            None => {
                println!("- {name}: removed");
                drift = true;
            }
            Some(n) => {
                // Simulated results must match exactly (determinism).
                let same = o.reads == n.reads
                    && o.disk_accesses == n.disk_accesses
                    && (o.avg_read_ms - n.avg_read_ms).abs() <= o.avg_read_ms.abs() * 1e-9;
                if !same {
                    println!(
                        "! {name}: avg_read_ms {} -> {}, reads {} -> {}, disk_accesses {} -> {}",
                        o.avg_read_ms,
                        n.avg_read_ms,
                        o.reads,
                        n.reads,
                        o.disk_accesses,
                        n.disk_accesses
                    );
                    drift = true;
                }
                drift |= diff_perf(name, o.perf.as_ref(), n.perf.as_ref(), &mut schema1_noted);
            }
        }
    }
    for (name, _) in &new {
        if !old_map.contains_key(name.as_str()) {
            println!("+ {name}: added");
            drift = true;
        }
    }
    if drift {
        eprintln!("lapreport: benchmark results drifted (wall-clock warns only, never gates)");
        eprintln!(
            "lapreport: if the drift is intentional, regenerate the snapshot with:\n\
             lapreport:   ./target/debug/experiments --smoke --bench-out BENCH.json"
        );
        1
    } else {
        println!(
            "bench-diff: {} scenarios match ({old_path} vs {new_path})",
            old.len()
        );
        0
    }
}

/// Compare the schema-2 `perf` sections of one scenario. Returns true
/// on (hard) drift. Three tiers:
/// * integer cost counters — deterministic, compared exactly;
/// * `events_per_read` / `mean_queue_depth` — deterministic ratios,
///   gated at 10% so an intentional counter change that also moves
///   the ratio reads as one failure, not two contradictory ones;
/// * `wall_ms` / `reads_per_sec` / `events_per_sec` — machine noise,
///   warn at a >30% regression, never gate.
fn diff_perf(
    name: &str,
    old: Option<&PerfRow>,
    new: Option<&PerfRow>,
    schema1_noted: &mut bool,
) -> bool {
    let (o, n) = match (old, new) {
        (Some(o), Some(n)) => (o, n),
        // A side without a perf section is a schema-1 file: note it
        // once and skip — upgrading the snapshot must not hard-fail.
        _ => {
            if !*schema1_noted {
                println!("  (schema-1 side without a perf section — perf comparison skipped)");
                *schema1_noted = true;
            }
            return false;
        }
    };
    let mut drift = false;
    for ((key, ov), (_, nv)) in o.exact_counters().into_iter().zip(n.exact_counters()) {
        if ov != nv {
            println!("! {name}: perf.{key} {ov} -> {nv} (deterministic counter drifted)");
            drift = true;
        }
    }
    for (key, ov, nv) in [
        ("events_per_read", o.events_per_read, n.events_per_read),
        ("mean_queue_depth", o.mean_queue_depth, n.mean_queue_depth),
    ] {
        if (nv - ov).abs() > ov.abs() * 0.10 {
            println!("! {name}: perf.{key} {ov:.3} -> {nv:.3} (beyond 10% ratio tolerance)");
            drift = true;
        }
    }
    // Wall-clock tier: a regression is *more* wall time or *less*
    // throughput. Improvements never warn.
    if n.wall_ms > o.wall_ms * 1.30 && n.wall_ms - o.wall_ms > 1.0 {
        println!(
            "warning: {name}: perf.wall_ms {:.0} -> {:.0} (>30% slower; informational)",
            o.wall_ms, n.wall_ms
        );
    }
    for (key, ov, nv) in [
        ("reads_per_sec", o.reads_per_sec, n.reads_per_sec),
        ("events_per_sec", o.events_per_sec, n.events_per_sec),
    ] {
        if ov > 0.0 && nv < ov * 0.70 {
            println!(
                "warning: {name}: perf.{key} {ov:.0} -> {nv:.0} (>30% regression; informational)"
            );
        }
    }
    drift
}

/// `lapreport perf FILE...`: render the simulator self-profile table
/// of one or more schema-2 BENCH.json files. Hard-fails (like
/// `metrics`) when a scenario has no perf section or a counter is
/// missing — this subcommand is the schema tripwire for the profile.
fn cmd_perf(args: &[String]) -> i32 {
    if args.is_empty() {
        usage();
    }
    for path in args {
        let rows = match load_bench(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lapreport: {e}");
                return 1;
            }
        };
        println!("{path}:");
        println!(
            "  {:<32} {:>8} {:>8} {:>6} {:>7} {:>18} {:>7} {:>8} {:>9} {:>10}",
            "scenario",
            "ev/read",
            "pushes",
            "peak",
            "mean-q",
            "stn%/pred%/cache%",
            "alloc/r",
            "wall ms",
            "reads/s",
            "events/s"
        );
        for (name, row) in &rows {
            let Some(p) = &row.perf else {
                eprintln!(
                    "lapreport: {path}: scenario {name:?} has no perf section \
                     (schema-1 file? regenerate with experiments --bench-out)"
                );
                return 1;
            };
            let subsystem = p.station_dispatches + p.pred_lookups + p.pred_updates + p.cache_probes;
            let share = |part: u64| {
                if subsystem == 0 {
                    0.0
                } else {
                    part as f64 / subsystem as f64 * 100.0
                }
            };
            println!(
                "  {:<32} {:>8.2} {:>8} {:>6} {:>7.2} {:>18} {:>7} {:>8.0} {:>9.0} {:>10.0}",
                name,
                p.events_per_read,
                p.queue_pushes,
                p.peak_queue_depth,
                p.mean_queue_depth,
                format!(
                    "{:.0}/{:.0}/{:.0}",
                    share(p.station_dispatches),
                    share(p.pred_lookups + p.pred_updates),
                    share(p.cache_probes)
                ),
                match p.allocs_per_read {
                    Some(a) => format!("{a:.1}"),
                    None => "-".into(),
                },
                p.wall_ms,
                p.reads_per_sec,
                p.events_per_sec
            );
        }
        println!("  (counters deterministic and CI-gated; wall/throughput informational)");
    }
    0
}

// ---------------------------------------------------------------------------
// chaos sweep summary
// ---------------------------------------------------------------------------

/// One row of an `experiments chaos --out` CSV. The fault-plan spec is
/// the last column because it contains commas itself.
struct ChaosRow {
    plan: u64,
    system: String,
    status: String,
    read_ms: f64,
    reads: u64,
    injected: u64,
    failovers: u64,
    spec: String,
}

const CHAOS_HEADER: &str = "plan,seed,system,status,read_ms,reads,faults_injected,failovers,spec";

fn load_chaos(path: &str) -> Result<Vec<ChaosRow>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == CHAOS_HEADER => {}
        other => {
            return Err(format!(
                "{path}: not a chaos CSV (expected header {CHAOS_HEADER:?}, got {:?})",
                other.map(|(_, h)| h).unwrap_or("<empty file>")
            ))
        }
    }
    let mut rows = Vec::new();
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        // splitn(9): everything after the eighth comma is the spec.
        let f: Vec<&str> = line.splitn(9, ',').collect();
        if f.len() != 9 {
            return Err(format!("{path}:{}: expected 9 columns: {line:?}", i + 1));
        }
        let num = |j: usize, what: &str| -> Result<f64, String> {
            f[j].parse()
                .map_err(|_| format!("{path}:{}: bad {what} {:?}", i + 1, f[j]))
        };
        rows.push(ChaosRow {
            plan: num(0, "plan")? as u64,
            system: f[2].to_string(),
            status: f[3].to_string(),
            read_ms: num(4, "read_ms")?,
            reads: num(5, "reads")? as u64,
            injected: num(6, "faults_injected")? as u64,
            failovers: num(7, "failovers")? as u64,
            spec: f[8].to_string(),
        });
    }
    if rows.is_empty() {
        return Err(format!("{path}: no chaos rows found"));
    }
    Ok(rows)
}

/// `lapreport chaos FILE`: per-system roll-up of a chaos-sweep CSV
/// (see EXPERIMENTS.md, "reading a chaos report"). Exits non-zero when
/// any plan ended in an invariant violation or a layout/backend
/// mismatch — the CSV is the machine-readable verdict, this is the
/// human one.
fn cmd_chaos(args: &[String]) -> i32 {
    let [path] = args else { usage() };
    let rows = match load_chaos(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lapreport: {e}");
            return 1;
        }
    };
    let mut systems: Vec<&str> = Vec::new();
    for r in &rows {
        if !systems.contains(&r.system.as_str()) {
            systems.push(&r.system);
        }
    }
    println!("chaos sweep: {path}");
    println!(
        "  {:<6} {:>6} {:>6} {:>10} {:>9} {:>10} {:>10} {:>10}",
        "system", "plans", "ok", "violation", "mismatch", "mean-ms", "injected", "failovers"
    );
    let mut bad = 0u64;
    for sys in &systems {
        let (mut ok, mut violation, mut mismatch) = (0u64, 0u64, 0u64);
        let (mut ms_sum, mut injected, mut failovers) = (0.0f64, 0u64, 0u64);
        for r in rows.iter().filter(|r| &r.system == sys) {
            match r.status.as_str() {
                "ok" => {
                    ok += 1;
                    ms_sum += r.read_ms;
                }
                "violation" => violation += 1,
                "mismatch" => mismatch += 1,
                other => {
                    eprintln!("lapreport: {path}: unknown chaos status {other:?}");
                    return 1;
                }
            }
            injected += r.injected;
            failovers += r.failovers;
        }
        bad += violation + mismatch;
        let mean_ms = if ok > 0 { ms_sum / ok as f64 } else { 0.0 };
        println!(
            "  {:<6} {:>6} {:>6} {:>10} {:>9} {:>10.3} {:>10} {:>10}",
            sys,
            ok + violation + mismatch,
            ok,
            violation,
            mismatch,
            mean_ms,
            injected,
            failovers
        );
    }
    for r in rows.iter().filter(|r| r.status != "ok") {
        println!(
            "  FAILED plan {:>4} {:<5} {}: reads {}  spec {}",
            r.plan, r.system, r.status, r.reads, r.spec
        );
    }
    if bad > 0 {
        eprintln!("lapreport: chaos sweep recorded {bad} failing plan-system cell(s)");
        1
    } else {
        println!(
            "  all {} plan-system cells green (oracle on, layouts and backends bit-identical)",
            rows.len()
        );
        0
    }
}
