//! `lapsim` — run one file-system simulation from the command line.
//!
//! ```text
//! # Generate-and-run:
//! lapsim --workload charisma --system pafs --algo ln_agr_is_ppm:1 --cache-mb 4
//!
//! # Run a trace file produced by lapgen (or by hand):
//! lapsim --trace charisma.trace --machine pm --system xfs --algo np --cache-mb 2
//!
//! # Capture a Chrome trace and a metrics CSV while simulating:
//! lapsim --workload charisma --trace-out trace.json --metrics-out metrics.csv
//! ```

use std::fs;
use std::process::exit;

use lap::prelude::*;

struct Args {
    trace: Option<String>,
    workload: Option<String>,
    machine: String,
    system: CacheSystem,
    algo: String,
    predictor: Option<String>,
    cache_mb: u64,
    seed: u64,
    scale: String,
    warmup_secs: u64,
    disk_model: String,
    disk_sched: DiskSched,
    prefetch_gran: PrefetchGranularity,
    extent_blocks: u64,
    fault_plan: Option<FaultPlan>,
    event_queue: QueueBackend,
    meta_layout: MetaLayout,
    check: CheckMode,
    verbose: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    trace_sample: u64,
    profile: bool,
}

fn usage() -> ! {
    eprintln!("usage: lapsim [--trace FILE | --workload SPEC]");
    eprintln!("              [--machine pm|now] [--system pafs|xfs|local]");
    eprintln!("              [--algo NAME] [--predictor SPEC] [--cache-mb N] [--seed N]");
    eprintln!("              [--scale small|paper] [--warmup SECS] [-v]");
    eprintln!("              [--disk-model fixed|geom] [--disk-sched fifo|sstf|clook]");
    eprintln!("              [--prefetch-gran block|extent] [--extent-blocks N]");
    eprintln!("              [--trace-out FILE] [--metrics-out FILE]");
    eprintln!("              [--trace-sample N]   keep 1-in-N high-volume trace events");
    eprintln!("              [--fault-plan SPEC]  deterministic fault injection");
    eprintln!("              [--event-queue calendar|heap]  event-queue backend (both");
    eprintln!("                                   bit-identical; heap is the reference)");
    eprintln!("              [--meta-layout dense|classic]  cache-metadata layout (both");
    eprintln!("                                   bit-identical; classic is the reference)");
    eprintln!("              [--profile]          print a simulator self-profile (cost");
    eprintln!("                                   counters + phase timers; results stay");
    eprintln!("                                   bit-identical to an unprofiled run)");
    eprintln!("              [--check auto|on|off]  runtime invariant oracle (DESIGN.md");
    eprintln!("                                   §15); auto = on in debug builds only;");
    eprintln!("                                   results are bit-identical either way");
    eprintln!();
    eprintln!("fault plans: comma-separated key=value, e.g.");
    eprintln!("    seed=7,disk-error=0.02,disk-retries=4,backoff-ms=5,burst=60:5,");
    eprintln!("    outage=120:10,node-outage=300:20,net-loss=0.01,net-delay=0.05:2");
    eprintln!("  windows are PERIOD_S:LEN_S; an empty spec disables injection");
    eprintln!();
    eprintln!("workloads: --workload takes a registry spec (bare charisma/sprite");
    eprintln!("           pick up --scale); the registry is:");
    eprint!("{}", lap::workzoo::registry_help());
    eprintln!();
    eprintln!("algorithms: np, oba, ln_agr_oba, is_ppm:J, ln_agr_is_ppm:J,");
    eprintln!("            is_ppm_backoff:J, ln_agr_is_ppm_backoff:J");
    eprintln!();
    eprintln!("predictors: --predictor swaps the predictor of --algo's configuration");
    eprintln!("            while keeping its aggressiveness mode; registry specs are");
    eprintln!("            np, oba, is_ppm[:J], is_ppm_backoff[:J], markov[:J][+oba],");
    eprintln!("            mithril[:W[,S]][+oba], e.g. --predictor markov:2+oba");
    eprintln!();
    eprintln!("disk models: fixed = the paper's constant service times (default);");
    eprintln!("             geom  = calibrated geometry (seek curve + rotation)");
    eprintln!();
    eprintln!("extents: --extent-blocks N implies the geometry model with N-block");
    eprintln!("         layout extents; --prefetch-gran extent lets the aggressive");
    eprintln!("         walker fetch one extent per linear-limit unit as a single");
    eprintln!("         multi-block disk job (default: block, the paper's rule)");
    exit(2);
}

fn parse_algo(name: &str) -> Option<PrefetchConfig> {
    let (base, order) = match name.split_once(':') {
        Some((b, o)) => (b, o.parse::<usize>().ok()?),
        None => (name, 1),
    };
    Some(match base {
        "np" => PrefetchConfig::np(),
        "oba" => PrefetchConfig::oba(),
        "ln_agr_oba" => PrefetchConfig::ln_agr_oba(),
        "is_ppm" => PrefetchConfig::is_ppm(order),
        "ln_agr_is_ppm" => PrefetchConfig::ln_agr_is_ppm(order),
        "is_ppm_backoff" => PrefetchConfig::is_ppm_backoff(order),
        "ln_agr_is_ppm_backoff" => PrefetchConfig::ln_agr_is_ppm_backoff(order),
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        trace: None,
        workload: None,
        machine: "pm".into(),
        system: CacheSystem::Pafs,
        algo: "ln_agr_is_ppm:1".into(),
        predictor: None,
        cache_mb: 4,
        seed: 42,
        scale: "small".into(),
        warmup_secs: 0,
        disk_model: "fixed".into(),
        disk_sched: DiskSched::Fifo,
        prefetch_gran: PrefetchGranularity::Block,
        extent_blocks: 1,
        fault_plan: None,
        event_queue: QueueBackend::Calendar,
        meta_layout: MetaLayout::Dense,
        check: CheckMode::Auto,
        verbose: false,
        trace_out: None,
        metrics_out: None,
        trace_sample: 1,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => out.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--workload" => out.workload = Some(args.next().unwrap_or_else(|| usage())),
            "--machine" => out.machine = args.next().unwrap_or_else(|| usage()),
            "--system" => {
                out.system = match args.next().as_deref() {
                    Some("pafs") => CacheSystem::Pafs,
                    Some("xfs") => CacheSystem::Xfs,
                    Some("local") => CacheSystem::LocalOnly,
                    _ => usage(),
                }
            }
            "--algo" => out.algo = args.next().unwrap_or_else(|| usage()),
            "--predictor" => out.predictor = Some(args.next().unwrap_or_else(|| usage())),
            "--cache-mb" => {
                out.cache_mb = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => out.scale = args.next().unwrap_or_else(|| usage()),
            "--warmup" => {
                out.warmup_secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--disk-model" => {
                out.disk_model = match args.next().as_deref() {
                    Some(m @ ("fixed" | "geom")) => m.into(),
                    _ => usage(),
                }
            }
            "--disk-sched" => {
                out.disk_sched = args
                    .next()
                    .as_deref()
                    .and_then(DiskSched::parse)
                    .unwrap_or_else(|| usage())
            }
            "--prefetch-gran" => {
                out.prefetch_gran = args
                    .next()
                    .as_deref()
                    .and_then(PrefetchGranularity::parse)
                    .unwrap_or_else(|| usage())
            }
            "--extent-blocks" => {
                out.extent_blocks = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--fault-plan" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match FaultPlan::parse(&spec) {
                    Ok(plan) => out.fault_plan = Some(plan),
                    Err(e) => {
                        eprintln!("bad --fault-plan: {e}");
                        exit(2);
                    }
                }
            }
            "--trace-out" => out.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => out.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-sample" => {
                out.trace_sample = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--event-queue" => {
                out.event_queue = args
                    .next()
                    .as_deref()
                    .and_then(QueueBackend::parse)
                    .unwrap_or_else(|| usage())
            }
            "--meta-layout" => {
                out.meta_layout = args
                    .next()
                    .as_deref()
                    .and_then(MetaLayout::parse)
                    .unwrap_or_else(|| usage())
            }
            "--check" => {
                out.check = args
                    .next()
                    .as_deref()
                    .and_then(CheckMode::parse)
                    .unwrap_or_else(|| usage())
            }
            "--profile" => out.profile = true,
            "-v" | "--verbose" => out.verbose = true,
            "-h" | "--help" => usage(),
            _ => usage(),
        }
    }
    if out.trace.is_none() && out.workload.is_none() {
        usage();
    }
    out
}

fn main() {
    let args = parse_args();

    let workload = if let Some(path) = &args.trace {
        let text = fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        Workload::from_text(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1);
        })
    } else {
        // The workload registry: bare `charisma`/`sprite` pick up
        // --scale; everything else is a full spec (`web:64,0.8,256`,
        // `strace:FILE`, ...).
        let spec = match WorkloadSpec::parse_cli(args.workload.as_deref().unwrap(), &args.scale) {
            Ok(s) => s,
            Err(e) => {
                // The error's Display carries the full registry listing.
                eprint!("bad --workload: {e}");
                exit(2);
            }
        };
        match spec.build(args.seed) {
            Ok(wl) => wl,
            Err(e) => {
                eprintln!("bad --workload: {e}");
                exit(2);
            }
        }
    };

    let Some(mut prefetch) = parse_algo(&args.algo) else {
        eprintln!("unknown algorithm {:?}", args.algo);
        eprintln!("algorithms: np, oba, ln_agr_oba, is_ppm:J, ln_agr_is_ppm:J,");
        eprintln!("            is_ppm_backoff:J, ln_agr_is_ppm_backoff:J");
        eprintln!("or pick any registry predictor with --predictor:");
        eprint!("{}", lap::predict::registry_help());
        exit(2);
    };
    // --predictor swaps the predictor while keeping --algo's
    // aggressiveness mode (simple vs Ln_Agr etc.).
    if let Some(spec) = &args.predictor {
        match PredictorSpec::parse(spec) {
            Ok(s) => prefetch.algorithm = s.kind,
            Err(e) => {
                // The error's Display carries the full registry listing.
                eprint!("bad --predictor: {e}");
                exit(2);
            }
        }
    }

    let mut config = match args.machine.as_str() {
        "pm" => SimConfig::pm(args.system, prefetch, args.cache_mb),
        "now" => SimConfig::now(args.system, prefetch, args.cache_mb),
        _ => usage(),
    };
    // Shrink the machine to the workload if the trace needs fewer nodes.
    config.fit_to_workload(&workload);
    config.warmup = SimDuration::from_secs(args.warmup_secs);
    if args.extent_blocks > 1 {
        // Multi-block extents only exist in the geometry model, so this
        // implies `--disk-model geom` with an N-block layout extent.
        config.machine = config.machine.with_geometry_extent(args.extent_blocks);
    } else if args.disk_model == "geom" {
        config.machine = config.machine.with_geometry();
    }
    config.machine.disk_sched = args.disk_sched;
    config.machine.prefetch_granularity = args.prefetch_gran;
    config.fault_plan = args.fault_plan;
    config.event_queue = args.event_queue;
    config.meta_layout = args.meta_layout;
    config.check = args.check;

    let t0 = std::time::Instant::now();
    let mut profile: Option<SimProfile> = None;
    let report = if let Some(trace_path) = &args.trace_out {
        // Tracing requested: run with a recording backend and export
        // the event stream as Chrome trace-event JSON. `--trace-sample N`
        // keeps only 1-in-N of the high-volume per-block event kinds so
        // long runs fit the ring buffer; structural events always stay.
        let rec = TraceRecorder::with_sampling(TraceRecorder::DEFAULT_CAPACITY, args.trace_sample);
        let t_setup = std::time::Instant::now();
        let sim = Simulation::with_recorder(config, std::sync::Arc::new(workload), rec);
        let setup = t_setup.elapsed();
        let (report, rec) = if args.profile {
            let (report, rec, mut p) = sim.run_profiled();
            p.wall.setup = setup;
            profile = Some(p);
            (report, rec)
        } else {
            sim.run_traced()
        };
        if rec.sample_every() > 1 {
            for (label, seen, kept) in rec.sampled_counts() {
                eprintln!("trace-sample: {label}: kept {kept} of {seen}");
            }
        }
        if rec.dropped() > 0 {
            eprintln!(
                "warning: trace ring buffer overflowed, oldest {} events dropped",
                rec.dropped()
            );
        }
        let json = lap::lapobs::chrome::export(rec.events());
        fs::write(trace_path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {trace_path}: {e}");
            exit(1);
        });
        report
    } else if args.profile {
        let (report, p) = run_simulation_profiled(config, workload);
        profile = Some(p);
        report
    } else {
        run_simulation(config, workload)
    };
    if let Some(metrics_path) = &args.metrics_out {
        fs::write(metrics_path, report.obs.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {metrics_path}: {e}");
            exit(1);
        });
    }
    if args.verbose {
        print!("{}", report.render_detailed());
        println!("  wall time           {:.2} s", t0.elapsed().as_secs_f64());
    } else {
        println!("{}", report.summary());
    }
    // The profile is printed after (never inside) the report output, so
    // everything above stays byte-identical to an unprofiled run.
    if let Some(p) = &profile {
        print!("{}", p.render());
    }
}
