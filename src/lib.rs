//! # Linear Aggressive Prefetching for Cooperative Caches
//!
//! A from-scratch Rust reproduction of
//!
//! > T. Cortes, J. Labarta. *Linear Aggressive Prefetching: A Way to
//! > Increase the Performance of Cooperative Caches.* IPPS 1999.
//!
//! The crate re-exports the whole stack under one roof:
//!
//! * [`predict`] — the predictor zoo: the paper's OBA and IS_PPM:`j`
//!   predictors plus the block-Markov chain and MITHRIL-style
//!   association miner extensions, behind a pluggable registry
//!   (`PredictorSpec`).
//! * [`prefetch`] — the paper's contribution: the aggressive driver
//!   and the *linear* (one block per file in flight) aggressiveness
//!   limiter over any registered predictor.
//! * [`coopcache`] — the two cooperative-cache substrates the paper
//!   evaluates on: PAFS (centralized) and xFS (serverless, N-chance).
//! * [`ioworkload`] — the trace model and the synthetic CHARISMA-like
//!   (parallel machine) and Sprite-like (NOW) workload generators.
//! * [`workzoo`] — the workload zoo: a pluggable `WorkloadSpec`
//!   registry (`lapsim --workload SPEC`) spanning the paper pair,
//!   modern synthetic generators (`web`, `db`, `mltrain`), and
//!   strace/blktrace text-trace ingestion.
//! * [`devmodel`] — device models: geometry-aware disks (seek curve,
//!   rotational latency, extent layout), segmented network links, and
//!   the SSTF/C-LOOK request schedulers.
//! * [`faultkit`] — deterministic fault injection: seeded disk-error
//!   bursts with retry-and-backoff, disk/node outage windows, and
//!   network loss/delay with per-class retry budgets.
//! * [`simkit`] — the deterministic discrete-event engine underneath.
//! * [`lapobs`] — zero-overhead observability: typed simulation
//!   events, the unified metrics registry, and the Chrome-trace
//!   exporter (`lapsim --trace-out`).
//! * [`lap_core`] — machine models (Table 1), the full file-system
//!   simulation, and the metrics behind every figure and table.
//!
//! ## Quickstart
//!
//! ```
//! use lap::prelude::*;
//!
//! // A small CHARISMA-like workload on an 8-node parallel machine.
//! let mut params = CharismaParams::small();
//! let workload = params.generate(42);
//!
//! // Simulate PAFS with Ln_Agr_IS_PPM:1 and 1 MB of cache per node.
//! let mut config = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1);
//! config.machine.nodes = params.nodes;
//! config.machine.disks = 4;
//! let with_prefetch = run_simulation(config.clone(), workload.clone());
//!
//! // ... and the no-prefetching baseline.
//! let mut np = config;
//! np.prefetch = PrefetchConfig::np();
//! let baseline = run_simulation(np, workload);
//!
//! assert!(with_prefetch.avg_read_ms < baseline.avg_read_ms);
//! ```
//!
//! See `examples/` for runnable scenarios and the `bench` crate for the
//! harness that regenerates every figure and table of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use coopcache;
pub use devmodel;
pub use faultkit;
pub use ioworkload;
pub use lap_core;
pub use lapobs;
pub use predict;
pub use prefetch;
pub use simkit;
pub use simprof;
pub use workzoo;

/// Everything needed to run simulations, in one import.
pub mod prelude {
    pub use coopcache::{
        CacheStats, CooperativeCache, LocalOnlyCache, MetaLayout, PafsCache, Replacement, XfsCache,
    };
    pub use devmodel::{DiskGeometry, DiskModelKind, DiskSched, LinkModel, NetModelKind};
    pub use faultkit::FaultPlan;
    pub use ioworkload::charisma::CharismaParams;
    pub use ioworkload::sprite::SpriteParams;
    pub use ioworkload::{BlockId, FileId, NodeId, Op, ProcId, Workload};
    pub use lap_core::{
        run_simulation, run_simulation_profiled, run_simulation_traced, CacheSystem, CheckMode,
        MachineConfig, PrefetchGranularity, SimConfig, SimProfile, SimReport, Simulation,
    };
    pub use lapobs::{NoopRecorder, Recorder, Registry, TraceRecorder};
    pub use prefetch::{
        AggressiveLimit, AlgorithmKind, FilePrefetcher, IsPpm, Oba, PredictorSpec, PrefetchConfig,
        Request, SpecError,
    };
    pub use simkit::{QueueBackend, SimDuration, SimTime};
    pub use workzoo::{WorkloadSpec, ZooKind};
}
