//! A miniature of the `experiments chaos` sweep, at the library level
//! and fast enough for `cargo test`: a handful of seeded random fault
//! plans (the same generator the full sweep draws from), each run with
//! the invariant oracle forced on across every cache-metadata layout ×
//! event-queue backend combination. Any oracle violation panics the
//! test; any layout/backend disagreement fails the bit-identity
//! assertion. The full 500-plan version is `experiments chaos`
//! (DESIGN.md §15).

use std::sync::Arc;

use lap::lap_core::run_simulation_shared;
use lap::prelude::*;

#[test]
fn random_fault_plans_hold_invariants_across_layouts_and_backends() {
    let mut params = CharismaParams::small();
    params.nodes = 8;
    let wl = Arc::new(params.generate(42));

    let variants: [(MetaLayout, QueueBackend); 4] = [
        (MetaLayout::Classic, QueueBackend::Heap),
        (MetaLayout::Classic, QueueBackend::Calendar),
        (MetaLayout::Dense, QueueBackend::Heap),
        (MetaLayout::Dense, QueueBackend::Calendar),
    ];

    let mut injected = 0;
    for seed in 0..6 {
        let spec = FaultPlan::random_spec(seed);
        let plan = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("random_spec({seed}) must parse: {e}"));
        let mut first: Option<SimReport> = None;
        for (layout, backend) in variants {
            let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1);
            cfg.machine.nodes = 8;
            cfg.machine.disks = 4;
            cfg.check = CheckMode::On;
            cfg.meta_layout = layout;
            cfg.event_queue = backend;
            cfg.fault_plan = Some(plan);
            let r = run_simulation_shared(cfg, Arc::clone(&wl));
            match &first {
                None => {
                    injected += r.faults_injected;
                    first = Some(r);
                }
                Some(base) => assert_eq!(
                    base, &r,
                    "plan {seed} ({spec}): {layout:?}/{backend:?} diverged from the reference run"
                ),
            }
        }
    }
    assert!(injected > 0, "no plan injected anything — sweep is vacuous");
}
