//! Integration tests for the `lapgen` and `lapsim` command-line tools.

use std::process::Command;

fn lapgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lapgen"))
}

fn lapsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lapsim"))
}

#[test]
fn lapgen_stats_mode_prints_summary() {
    let out = lapgen()
        .args(["charisma", "--stats", "--seed", "5"])
        .output()
        .expect("run lapgen");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("reads"), "stderr: {err}");
    assert!(out.stdout.is_empty(), "stats mode writes no trace");
}

#[test]
fn lapgen_trace_round_trips_through_lapsim() {
    let dir = std::env::temp_dir().join(format!("lap-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.trace");

    let out = lapgen()
        .args(["sprite", "--seed", "3", "-o"])
        .arg(&trace)
        .output()
        .expect("run lapgen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = lapsim()
        .args(["--trace"])
        .arg(&trace)
        .args([
            "--machine",
            "now",
            "--system",
            "pafs",
            "--algo",
            "ln_agr_is_ppm:1",
            "--cache-mb",
            "2",
        ])
        .output()
        .expect("run lapsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PAFS/Ln_Agr_IS_PPM:1"), "stdout: {stdout}");
    assert!(stdout.contains("read"), "stdout: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lapsim_generates_and_runs_inline() {
    let out = lapsim()
        .args([
            "--workload",
            "charisma",
            "--system",
            "xfs",
            "--algo",
            "np",
            "--cache-mb",
            "1",
            "-v",
        ])
        .output()
        .expect("run lapsim");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("xFS/NP"));
    assert!(stdout.contains("hit ratio"));
    assert!(stdout.contains("simulated time"));
}

#[test]
fn lapsim_writes_trace_and_metrics_files() {
    let dir = std::env::temp_dir().join(format!("lap-cli-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.json");
    let metrics = dir.join("m.csv");

    let out = lapsim()
        .args(["--workload", "charisma", "--cache-mb", "1", "--trace-out"])
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("run lapsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\","));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"B\""), "no disk service spans");
    assert!(json.contains("\"mispredict\""), "no mispredict instants");
    assert!(json.trim_end().ends_with("]}"), "trace JSON is truncated");

    let csv = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(csv.starts_with("metric,value\n"));
    assert!(csv.contains("cache.local_hits,"), "csv: {csv}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lapsim_rejects_unknown_algorithm() {
    let out = lapsim()
        .args(["--workload", "sprite", "--algo", "wizardry"])
        .output()
        .expect("run lapsim");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown algorithm"), "stderr: {err}");
    // The failure also advertises the predictor registry as the way
    // out (`--algo` names are a fixed set; `--predictor` is open).
    assert!(err.contains("--predictor"), "stderr: {err}");
    assert!(err.contains("valid predictor specs"), "stderr: {err}");
}

#[test]
fn lapsim_rejects_bad_fault_plan_with_key_menu() {
    let out = lapsim()
        .args(["--workload", "sprite", "--fault-plan", "bogus=1"])
        .output()
        .expect("run lapsim");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --fault-plan"), "stderr: {err}");
    // Every parse error carries the full key menu, registry-style.
    assert!(err.contains("fault-plan keys:"), "stderr: {err}");
    for key in ["disk-error", "outage", "node-outage-wipe", "net-loss"] {
        assert!(err.contains(key), "key menu misses {key}: {err}");
    }
}

#[test]
fn lapsim_supports_every_registry_predictor_spec() {
    for spec in [
        "np",
        "oba",
        "is_ppm:3",
        "is_ppm_backoff:2",
        "markov:1",
        "markov:2+oba",
        "mithril",
        "mithril:8,3+oba",
    ] {
        let out = lapsim()
            .args([
                "--workload",
                "sprite",
                "--system",
                "local",
                "--algo",
                "ln_agr_is_ppm:1",
                "--predictor",
                spec,
                "--cache-mb",
                "1",
            ])
            .output()
            .expect("run lapsim");
        assert!(
            out.status.success(),
            "predictor {spec}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn lapsim_rejects_bad_predictor_spec_with_registry_listing() {
    let out = lapsim()
        .args(["--workload", "sprite", "--predictor", "markov:7"])
        .output()
        .expect("run lapsim");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --predictor"), "stderr: {err}");
    assert!(err.contains("unknown predictor spec"), "stderr: {err}");
    for name in ["np", "oba", "is_ppm", "is_ppm_backoff", "markov", "mithril"] {
        assert!(err.contains(name), "registry listing misses {name}: {err}");
    }
}

#[test]
fn lapsim_supports_every_documented_algorithm() {
    for algo in [
        "np",
        "oba",
        "ln_agr_oba",
        "is_ppm:1",
        "ln_agr_is_ppm:3",
        "is_ppm_backoff:2",
        "ln_agr_is_ppm_backoff:2",
    ] {
        let out = lapsim()
            .args([
                "--workload",
                "sprite",
                "--system",
                "local",
                "--algo",
                algo,
                "--cache-mb",
                "1",
            ])
            .output()
            .expect("run lapsim");
        assert!(
            out.status.success(),
            "algo {algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
