//! Device-model guarantees at the whole-simulator level: the
//! calibrated geometry preset reproduces the fixed-cost model's seed
//! results under FIFO, the schedulers are load-bearing (they change
//! results), and the A/B determinism contract extends to runs with
//! devmodel events enabled.

use std::sync::Arc;

use lap::prelude::*;

/// Build the same configuration the `lapsim` CLI would for the seed
/// scenarios, including its shrink-to-workload rule.
fn scenario(
    workload: &str,
    system: CacheSystem,
    prefetch: PrefetchConfig,
    cache_mb: u64,
) -> (SimConfig, Workload) {
    let wl = lap::ioworkload::generate_named(workload, "small", 42).unwrap();
    let mut cfg = SimConfig::pm(system, prefetch, cache_mb);
    if wl.nodes < cfg.machine.nodes {
        cfg.machine.nodes = wl.nodes;
        cfg.machine.disks = cfg.machine.disks.min(wl.nodes.max(2));
    }
    (cfg, wl)
}

fn seed_scenarios() -> Vec<(&'static str, SimConfig, Workload)> {
    vec![
        {
            let (c, w) = scenario(
                "charisma",
                CacheSystem::Pafs,
                PrefetchConfig::ln_agr_is_ppm(1),
                4,
            );
            ("charisma/pafs/ln_agr_is_ppm:1", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::np(), 4);
            ("charisma/pafs/np", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::oba(), 4);
            ("charisma/pafs/oba", c, w)
        },
        {
            let (c, w) = scenario(
                "sprite",
                CacheSystem::Xfs,
                PrefetchConfig::ln_agr_is_ppm(1),
                2,
            );
            ("sprite/xfs/ln_agr_is_ppm:1", c, w)
        },
    ]
}

/// The calibration contract: switching the seed scenarios from the
/// fixed Table-1 service times to the geometry model under FIFO moves
/// read time and hit rate by less than 2%. This is what keeps every
/// previously-published number comparable when the geometry model is
/// on.
#[test]
fn geometry_fifo_matches_fixed_model_within_two_percent() {
    for (name, cfg, wl) in seed_scenarios() {
        let fixed = run_simulation(cfg.clone(), wl.clone());
        let mut gcfg = cfg;
        gcfg.machine = gcfg.machine.with_geometry();
        let geom = run_simulation(gcfg, wl);

        let read_dev = (geom.avg_read_ms - fixed.avg_read_ms).abs() / fixed.avg_read_ms;
        assert!(
            read_dev < 0.02,
            "{name}: geometry read time {:.3} ms deviates {:.1}% from fixed {:.3} ms",
            geom.avg_read_ms,
            read_dev * 100.0,
            fixed.avg_read_ms
        );
        let (hf, hg) = (fixed.cache.hit_ratio(), geom.cache.hit_ratio());
        let hit_dev = (hg - hf).abs() / hf;
        assert!(
            hit_dev < 0.02,
            "{name}: geometry hit rate {:.1}% deviates {:.1}% from fixed {:.1}%",
            hg * 100.0,
            hit_dev * 100.0,
            hf * 100.0
        );
    }
}

/// The schedulers must be load-bearing, not cosmetic: on a
/// prefetch-heavy seed scenario the geometry model must produce
/// *different* (deterministic) results under SSTF and C-LOOK than
/// under FIFO, and reordering must actually help the aggressive
/// prefetcher (shorter seeks between queued requests).
#[test]
fn schedulers_measurably_change_prefetch_results() {
    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let mut base = cfg;
    base.machine = base.machine.with_geometry();

    let run = |sched: DiskSched| {
        let mut c = base.clone();
        c.machine.disk_sched = sched;
        run_simulation(c, wl.clone())
    };
    let fifo = run(DiskSched::Fifo);
    let sstf = run(DiskSched::Sstf);
    let clook = run(DiskSched::Clook);

    assert_ne!(
        fifo.avg_read_ms, sstf.avg_read_ms,
        "SSTF did not change read time — scheduler is cosmetic"
    );
    assert_ne!(
        fifo.avg_read_ms, clook.avg_read_ms,
        "C-LOOK did not change read time — scheduler is cosmetic"
    );
    // Seek-aware reordering should not make this workload slower.
    assert!(
        sstf.avg_read_ms < fifo.avg_read_ms,
        "SSTF ({:.3} ms) did not beat FIFO ({:.3} ms)",
        sstf.avg_read_ms,
        fifo.avg_read_ms
    );
    // Determinism: the same scheduled run twice is the same report.
    assert_eq!(sstf, run(DiskSched::Sstf));
}

/// A/B determinism with devmodel events enabled: a traced run with the
/// geometry model and a reordering scheduler must equal the no-op run
/// in every metric, and must actually have emitted the new event
/// kinds.
#[test]
fn geometry_traced_run_equals_noop_run() {
    use lap::lapobs::Event;

    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let mut gcfg = cfg;
    gcfg.machine = gcfg.machine.with_geometry();
    gcfg.machine.disk_sched = DiskSched::Sstf;
    let wl = Arc::new(wl);

    let baseline = Simulation::with_recorder(gcfg.clone(), Arc::clone(&wl), NoopRecorder).run();
    let (traced, rec) = Simulation::with_recorder(gcfg, wl, TraceRecorder::new()).run_traced();

    assert_eq!(baseline, traced, "tracing perturbed the geometry model");
    assert!(
        rec.events()
            .any(|(_, e)| matches!(e, Event::DiskService { .. })),
        "no DiskService mechanical-detail events recorded"
    );
    assert!(
        rec.events()
            .any(|(_, e)| matches!(e, Event::QueueReorder { .. })),
        "SSTF never reordered — no QueueReorder events recorded"
    );
}

/// The per-disk mechanical counters surface in the unified registry
/// when (and only when) the geometry model is active.
#[test]
fn mechanical_metrics_surface_in_registry() {
    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let fixed = run_simulation(cfg.clone(), wl.clone());
    let mut gcfg = cfg;
    gcfg.machine = gcfg.machine.with_geometry();
    let geom = run_simulation(gcfg, wl);

    let has = |r: &SimReport, needle: &str| {
        r.obs
            .to_csv()
            .lines()
            .any(|l| l.starts_with(&format!("{needle},")))
    };
    for needle in ["disk0.seek_s", "disk0.rot_wait_s", "disk0.seek_cylinders"] {
        assert!(
            has(&geom, needle),
            "geometry run missing {needle} in registry"
        );
        assert!(
            !has(&fixed, needle),
            "fixed run unexpectedly exports {needle}"
        );
    }
}
