//! Workspace-level integration tests: scenarios that span every crate
//! through the `lap` facade.

use lap::prelude::*;
use lap::simkit::SimDuration;

fn small_pm(pf: PrefetchConfig, mb: u64) -> SimConfig {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, mb);
    cfg.machine.nodes = 8;
    cfg.machine.disks = 4;
    cfg
}

#[test]
fn trace_text_round_trip_preserves_simulation_results() {
    // A workload serialized to the text format and re-parsed must
    // simulate to bit-identical results.
    let wl = CharismaParams::small().generate(5);
    let reparsed = Workload::from_text(&wl.to_text()).expect("parse");
    let a = run_simulation(small_pm(PrefetchConfig::ln_agr_is_ppm(1), 2), wl);
    let b = run_simulation(small_pm(PrefetchConfig::ln_agr_is_ppm(1), 2), reparsed);
    assert_eq!(a.avg_read_ms, b.avg_read_ms);
    assert_eq!(a.disk_accesses(), b.disk_accesses());
    assert_eq!(a.cache, b.cache);
}

#[test]
fn figure1_pattern_through_the_full_stack() {
    // Drive the paper's Figure 1 pattern through a real simulation: a
    // single process reading (2 blocks, +3 -> 3 blocks, +5 -> ...) and
    // an Ln_Agr_IS_PPM:1 prefetcher. After warm-up, reads must be
    // near-hit-speed.
    let block = 8192u64;
    let blocks = 512u64;
    let mut ops = Vec::new();
    let mut off = 0u64;
    loop {
        // 2-block request, +3, 3-block request, +5 ...
        if off + 2 > blocks {
            break;
        }
        ops.push(Op::Compute(SimDuration::from_millis(200)));
        ops.push(Op::Read {
            file: FileId(0),
            offset: off * block,
            len: 2 * block,
        });
        if off + 3 + 3 > blocks {
            break;
        }
        ops.push(Op::Compute(SimDuration::from_millis(200)));
        ops.push(Op::Read {
            file: FileId(0),
            offset: (off + 3) * block,
            len: 3 * block,
        });
        off += 8;
    }
    let wl = Workload {
        name: "figure1".into(),
        block_size: block,
        nodes: 1,
        files: vec![lap::ioworkload::FileMeta {
            id: FileId(0),
            size: blocks * block,
        }],
        processes: vec![lap::ioworkload::ProcessTrace {
            proc: ProcId(0),
            node: NodeId(0),
            ops,
        }],
    };
    wl.validate();

    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 4);
    cfg.machine.nodes = 1;
    cfg.machine.disks = 2;
    let with_pf = run_simulation(cfg.clone(), wl.clone());

    let mut np = cfg;
    np.prefetch = PrefetchConfig::np();
    let without = run_simulation(np, wl);

    // NP pays a disk read per request (~11 ms); the prefetched run
    // must be several times faster on average.
    assert!(
        with_pf.avg_read_ms * 3.0 < without.avg_read_ms,
        "prefetch {:.3} ms vs NP {:.3} ms",
        with_pf.avg_read_ms,
        without.avg_read_ms
    );
    // And the strided pattern is learned, not OBA-guessed: the pattern
    // skips blocks, so sequential guessing alone cannot reach 90%+ hits.
    assert!(with_pf.cache.hit_ratio() > 0.9);
}

#[test]
fn seven_configurations_keep_their_paper_grouping_on_charisma() {
    // Figure 4's grouping at small scale: NP and OBA are the slowest
    // group; every aggressive algorithm beats every non-aggressive one
    // of the same predictor.
    let wl = CharismaParams::small().generate(42);
    let run = |pf| run_simulation(small_pm(pf, 2), wl.clone()).avg_read_ms;

    let np = run(PrefetchConfig::np());
    let oba = run(PrefetchConfig::oba());
    let isppm1 = run(PrefetchConfig::is_ppm(1));
    let ln_oba = run(PrefetchConfig::ln_agr_oba());
    let ln_isppm1 = run(PrefetchConfig::ln_agr_is_ppm(1));

    // OBA helps only a little.
    assert!(oba <= np * 1.02, "OBA {oba} vs NP {np}");
    // The intelligent predictor beats plain OBA clearly.
    assert!(isppm1 < oba, "IS_PPM:1 {isppm1} vs OBA {oba}");
    // Aggressive beats non-aggressive for both predictors.
    assert!(ln_oba < oba, "Ln_Agr_OBA {ln_oba} vs OBA {oba}");
    assert!(
        ln_isppm1 < isppm1,
        "Ln_Agr_IS_PPM:1 {ln_isppm1} vs IS_PPM:1 {isppm1}"
    );
    // And the aggressive group is far ahead of NP.
    assert!(
        ln_isppm1 * 1.5 < np,
        "Ln_Agr_IS_PPM:1 {ln_isppm1} vs NP {np}"
    );
}

#[test]
fn xfs_and_pafs_converge_when_nothing_is_shared() {
    // Figure 7 logic: with no inter-node sharing, per-node linearity
    // behaves like global linearity — prefetch volumes are close.
    let wl = SpriteParams::small().generate(11);
    let mut pafs_cfg = SimConfig::now(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 2);
    pafs_cfg.machine.nodes = 6;
    pafs_cfg.machine.disks = 3;
    let mut xfs_cfg = pafs_cfg.clone();
    xfs_cfg.system = CacheSystem::Xfs;

    let pafs = run_simulation(pafs_cfg, wl.clone());
    let xfs = run_simulation(xfs_cfg, wl);
    let ratio = xfs.prefetch.issued as f64 / pafs.prefetch.issued.max(1) as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "prefetch volume ratio {ratio:.2} (xfs {} vs pafs {})",
        xfs.prefetch.issued,
        pafs.prefetch.issued
    );
}

#[test]
fn prelude_exposes_the_whole_stack() {
    // Compile-time check that the prelude covers the API surface the
    // examples use.
    let _algos: [PrefetchConfig; 7] = PrefetchConfig::paper_suite();
    let _limit = AggressiveLimit::One;
    let _kind = AlgorithmKind::Oba;
    let _m = MachineConfig::pm();
    let _r = Request::new(0, 1);
    let mut oba = Oba::new();
    oba.observe(Request::new(0, 1));
    let mut ppm = IsPpm::new(1);
    ppm.observe(Request::new(0, 1));
    let _pf = FilePrefetcher::new(PrefetchConfig::oba(), 10);
    let _c1 = PafsCache::new(2, 2);
    let _c2 = XfsCache::new(2, 2);
    let _t = SimTime::ZERO;
    let _d = SimDuration::from_millis(1);
}
