//! Extent-granular prefetching guarantees at the whole-simulator
//! level: block mode is bit-identical to the pre-extent simulator on
//! the seed scenarios, one-block extents degenerate extent mode to
//! block mode, extent batches never cross an extent boundary, the A/B
//! determinism contract extends to the new `ExtentIssue` events, and
//! the headline claim — extent-granular issue beats per-block issue
//! for the aggressive configurations on multi-block-extent geometry —
//! actually holds.

use std::sync::Arc;

use lap::prelude::*;

/// Build the same configuration the `lapsim` CLI would for the seed
/// scenarios, including its shrink-to-workload rule.
fn scenario(
    workload: &str,
    system: CacheSystem,
    prefetch: PrefetchConfig,
    cache_mb: u64,
) -> (SimConfig, Workload) {
    let wl = lap::ioworkload::generate_named(workload, "small", 42).unwrap();
    let mut cfg = SimConfig::pm(system, prefetch, cache_mb);
    if wl.nodes < cfg.machine.nodes {
        cfg.machine.nodes = wl.nodes;
        cfg.machine.disks = cfg.machine.disks.min(wl.nodes.max(2));
    }
    (cfg, wl)
}

fn seed_scenarios() -> Vec<(&'static str, SimConfig, Workload)> {
    vec![
        {
            let (c, w) = scenario(
                "charisma",
                CacheSystem::Pafs,
                PrefetchConfig::ln_agr_is_ppm(1),
                4,
            );
            ("charisma/pafs/ln_agr_is_ppm:1", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::np(), 4);
            ("charisma/pafs/np", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::oba(), 4);
            ("charisma/pafs/oba", c, w)
        },
        {
            let (c, w) = scenario(
                "sprite",
                CacheSystem::Xfs,
                PrefetchConfig::ln_agr_is_ppm(1),
                2,
            );
            ("sprite/xfs/ln_agr_is_ppm:1", c, w)
        },
    ]
}

/// The comparability contract: with the default block granularity the
/// simulator must reproduce the pre-extent seed results *bit for bit*
/// on all four seed scenarios — adding the extent machinery (multi-
/// block jobs, extent-aware striping, run completion paths) must be
/// invisible until it is switched on. The goldens were captured from
/// the simulator before the extent code existed; `to_bits` equality
/// rules out even last-ulp drift.
#[test]
fn block_mode_is_bit_identical_to_seed_results() {
    let golden: [(&str, f64, u64, u64); 4] = [
        ("charisma/pafs/ln_agr_is_ppm:1", 2.644627471515152, 825, 997),
        ("charisma/pafs/np", 4.587226310303037, 825, 849),
        ("charisma/pafs/oba", 4.533400981818182, 825, 852),
        ("sprite/xfs/ln_agr_is_ppm:1", 1.1082858867924534, 1060, 912),
    ];
    for ((name, cfg, wl), (gname, gms, greads, gacc)) in seed_scenarios().into_iter().zip(golden) {
        assert_eq!(name, gname, "scenario roster drifted");
        assert_eq!(
            cfg.machine.prefetch_granularity,
            PrefetchGranularity::Block,
            "block granularity must be the default"
        );
        let r = run_simulation(cfg, wl);
        assert_eq!(
            r.avg_read_ms.to_bits(),
            gms.to_bits(),
            "{name}: avg_read_ms {:?} != golden {:?} — block mode is no longer bit-identical",
            r.avg_read_ms,
            gms
        );
        assert_eq!(
            (r.reads, r.disk_accesses()),
            (greads, gacc),
            "{name}: reads/disk accesses drifted from the seed results"
        );
    }
}

/// One-block extents reduce extent mode to exactly the per-block
/// simulator: same read times, same traffic, same cache behaviour.
/// (The full reports differ only in the batch bookkeeping counters —
/// extent mode counts its degenerate one-block batches.)
#[test]
fn one_block_extents_degenerate_to_block_mode() {
    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let mut gcfg = cfg;
    gcfg.machine = gcfg.machine.with_geometry(); // extent_blocks = 1
    let mut ecfg = gcfg.clone();
    ecfg.machine.prefetch_granularity = PrefetchGranularity::Extent;

    let blk = run_simulation(gcfg, wl.clone());
    let ext = run_simulation(ecfg, wl);
    assert_eq!(
        (
            blk.avg_read_ms.to_bits(),
            blk.reads,
            blk.disk_reads_demand,
            blk.disk_reads_prefetch,
            blk.disk_writes,
        ),
        (
            ext.avg_read_ms.to_bits(),
            ext.reads,
            ext.disk_reads_demand,
            ext.disk_reads_prefetch,
            ext.disk_writes,
        ),
        "extent mode on one-block extents must behave exactly like block mode"
    );
    assert_eq!(blk.cache, ext.cache);
    // The degenerate batches are still *accounted* as batches.
    assert_eq!(
        ext.prefetch.extent_batches,
        ext.prefetch.extent_batched_blocks
    );
    assert!(ext.prefetch.extent_batches > 0);
    assert_eq!(blk.prefetch.extent_batches, 0);
}

/// The headline claim of the extent experiment: on geometry with
/// multi-block extents, letting the aggressive walker fetch one extent
/// per linear-limit unit improves mean read time over per-block issue
/// — the batch pays one positioning cost and one walk round trip for
/// the whole extent. (The ablation shape of `experiments extent` is
/// pinned separately in `crates/bench/tests/extent_acceptance.rs`;
/// this one uses the lapsim seed-scenario shape, where Ln_Agr_IS_PPM:1
/// is the reliable winner at moderate extent sizes.)
#[test]
fn extent_mode_beats_block_mode_for_aggressive_configs() {
    for n in [4u64, 8] {
        let (cfg, wl) = scenario(
            "charisma",
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        );
        let mut bcfg = cfg;
        bcfg.machine = bcfg.machine.with_geometry_extent(n);
        let mut ecfg = bcfg.clone();
        ecfg.machine.prefetch_granularity = PrefetchGranularity::Extent;

        let blk = run_simulation(bcfg, wl.clone());
        let ext = run_simulation(ecfg, wl);
        assert!(
            ext.avg_read_ms < blk.avg_read_ms,
            "extent_blocks={n}: Ln_Agr_IS_PPM:1 extent mode ({:.3} ms) did not beat \
             block mode ({:.3} ms)",
            ext.avg_read_ms,
            blk.avg_read_ms
        );
        // The win must come from batching, not from a traffic change
        // the batcher is not allowed to make: blocks-per-issue > 1.
        assert!(
            ext.prefetch.blocks_per_issue() > 1.0,
            "extent_blocks={n}: no multi-block batches were issued"
        );
    }
}

/// A/B determinism with extent events enabled: a traced extent-mode
/// run must equal the no-op run in every metric, the trace must carry
/// `ExtentIssue` batch markers that never cross an extent boundary,
/// and every batched block must still have its per-block
/// `PrefetchIssue` companion.
#[test]
fn extent_traced_run_equals_noop_run_and_events_hold_invariants() {
    use lap::lapobs::Event;

    const EXTENT: u64 = 8;
    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let mut ecfg = cfg;
    ecfg.machine = ecfg.machine.with_geometry_extent(EXTENT);
    ecfg.machine.prefetch_granularity = PrefetchGranularity::Extent;
    let wl = Arc::new(wl);

    let baseline = Simulation::with_recorder(ecfg.clone(), Arc::clone(&wl), NoopRecorder).run();
    let (traced, rec) = Simulation::with_recorder(ecfg, wl, TraceRecorder::new()).run_traced();
    assert_eq!(baseline, traced, "tracing perturbed extent-mode results");

    let mut batches = 0u64;
    let mut batched_blocks = 0u64;
    let mut issues = 0u64;
    for (_, e) in rec.events() {
        match e {
            Event::ExtentIssue {
                first_block,
                blocks,
                ..
            } => {
                let (first, count) = (*first_block, u64::from(*blocks));
                assert!(count >= 1);
                assert_eq!(
                    first / EXTENT,
                    (first + count - 1) / EXTENT,
                    "batch [{first}, +{count}) crosses an extent boundary"
                );
                batches += 1;
                batched_blocks += count;
            }
            Event::PrefetchIssue { .. } => issues += 1,
            _ => {}
        }
    }
    assert!(batches > 0, "no ExtentIssue events recorded");
    assert_eq!(
        batched_blocks, issues,
        "every batched block must carry a per-block PrefetchIssue companion"
    );
    assert_eq!(traced.prefetch.extent_batches, batches);
    assert_eq!(traced.prefetch.extent_batched_blocks, batched_blocks);
}

/// The batch metrics surface in the unified registry so `lapreport`
/// and the extent ablation can read them.
#[test]
fn extent_metrics_surface_in_registry() {
    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let mut ecfg = cfg;
    ecfg.machine = ecfg.machine.with_geometry_extent(8);
    ecfg.machine.prefetch_granularity = PrefetchGranularity::Extent;
    let r = run_simulation(ecfg, wl);
    for needle in [
        "prefetch.extent_batches",
        "prefetch.extent_batched_blocks",
        "prefetch.blocks_per_issue",
    ] {
        assert!(
            r.obs
                .to_csv()
                .lines()
                .any(|l| l.starts_with(&format!("{needle},"))),
            "extent run missing {needle} in registry"
        );
    }
}
