//! Fault-injection guarantees at the whole-simulator level
//! (DESIGN.md §10): an *active* fault plan keeps every determinism
//! contract the clean simulator makes — tracing changes nothing,
//! replay is bit-identical — while a *zero* plan is indistinguishable
//! from having no fault layer at all; and the new span components
//! (`span.retry_us`, `span.failover_us`) are populated exactly when
//! faults are active, without ever breaking the ten-component sum.

use std::sync::Arc;

use lap::lapobs::MetricValue;
use lap::prelude::*;

/// A PM config small enough to run in milliseconds but big enough to
/// exercise remote hits, prefetching, write-backs and evictions.
fn small_pm(pf: PrefetchConfig, cache_mb: u64) -> SimConfig {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, cache_mb);
    cfg.machine.nodes = 8;
    cfg.machine.disks = 4;
    cfg
}

fn small_workload(seed: u64) -> Workload {
    let mut params = CharismaParams::small();
    params.nodes = 8;
    params.generate(seed)
}

/// The `experiments faults` "heavy" plan: transient errors with
/// bursts, disk and node outage windows, network loss and delay.
fn heavy_plan() -> FaultPlan {
    FaultPlan::parse(
        "seed=7,disk-error=0.02,disk-retries=5,backoff-ms=5,burst=10:2,\
         outage=30:3,node-outage=45:5,net-loss=0.02,net-delay=0.05:2",
    )
    .unwrap()
}

fn hist(report: &SimReport, key: &str) -> (u64, f64) {
    match report.obs.get(key) {
        Some(MetricValue::Histogram(h)) => (h.count, h.total_us),
        other => panic!("{key}: expected a histogram, got {other:?}"),
    }
}

/// The zero-overhead tracing contract survives fault injection: a
/// `TraceRecorder` run under an active plan produces the same
/// `SimReport` (every metric, via `PartialEq`) as the no-op run.
#[test]
fn tracing_does_not_change_faulted_results() {
    let wl = Arc::new(small_workload(42));
    let mut cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);
    cfg.fault_plan = Some(heavy_plan());

    let baseline = Simulation::with_recorder(cfg.clone(), Arc::clone(&wl), NoopRecorder).run();
    let (traced, rec) = Simulation::with_recorder(cfg, wl, TraceRecorder::new()).run_traced();

    assert!(
        baseline.faults_injected > 0,
        "plan inert — the A/B says nothing"
    );
    assert_eq!(baseline, traced, "tracing perturbed a faulted simulation");
    assert!(!rec.is_empty(), "the traced run captured no events");
}

/// Same seed, same plan, same report — the fault layer draws from its
/// own seeded stream and from simulated time only, so a faulted run
/// replays bit-identically.
#[test]
fn faulted_runs_replay_bit_identically() {
    let wl = small_workload(42);
    let mut cfg = small_pm(PrefetchConfig::ln_agr_oba(), 2);
    cfg.fault_plan = Some(heavy_plan());

    let a = run_simulation(cfg.clone(), wl.clone());
    let b = run_simulation(cfg, wl);
    assert!(
        a.faults_injected > 0,
        "plan inert — replay check is vacuous"
    );
    assert_eq!(a, b, "same (workload, config, plan) must replay exactly");
}

/// A plan with no fault sources — whether `FaultPlan::default()` or a
/// parsed spec that only sets a seed — must be indistinguishable from
/// `fault_plan: None`: every injection site short-circuits and the
/// report is equal down to the last bit of the registry.
#[test]
fn zero_fault_plan_is_identical_to_no_plan() {
    let wl = small_workload(42);
    let cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);

    let clean = run_simulation(cfg.clone(), wl.clone());

    for plan in [FaultPlan::default(), FaultPlan::parse("seed=9").unwrap()] {
        assert!(plan.is_empty(), "these plans must carry no fault sources");
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.fault_plan = Some(plan);
        let zero = run_simulation(faulted_cfg, wl.clone());
        assert_eq!(
            clean.avg_read_ms.to_bits(),
            zero.avg_read_ms.to_bits(),
            "zero-fault read time drifted"
        );
        assert_eq!(clean, zero, "zero-fault plan perturbed the simulation");
    }
    assert_eq!(clean.faults_injected, 0);
    assert_eq!(clean.failovers, 0);
    assert_eq!(clean.degraded_s, 0.0);
}

/// Span attribution under stress: the retry and failover components
/// cover every post-warmup read (schema: count == reads even when the
/// value is zero), are nonzero exactly when the plan is active, and
/// the ten components still sum to the mean read time — faults are
/// attributed, never lost or invented. Demand reads themselves are
/// neither lost nor double counted.
#[test]
fn retry_and_failover_are_attributed_exactly() {
    const SPAN_KEYS: [&str; 10] = [
        "span.cache_lookup_us",
        "span.queue_us",
        "span.failover_us",
        "span.seek_us",
        "span.rotation_us",
        "span.disk_transfer_us",
        "span.retry_us",
        "span.coordination_us",
        "span.network_us",
        "span.transfer_us",
    ];

    let wl = small_workload(42);
    let cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);
    let clean = run_simulation(cfg.clone(), wl.clone());
    let mut faulted_cfg = cfg;
    faulted_cfg.fault_plan = Some(heavy_plan());
    let faulted = run_simulation(faulted_cfg, wl);

    // No read lost to an aborted job, none double counted by a reissue.
    assert_eq!(clean.reads, faulted.reads, "fault plan changed read count");
    assert_eq!(clean.writes, faulted.writes, "fault plan changed writes");

    for (report, active) in [(&clean, false), (&faulted, true)] {
        let mut sum_us = 0.0;
        for key in SPAN_KEYS {
            let (count, total_us) = hist(report, key);
            assert_eq!(count, report.reads, "{key} must cover every read");
            sum_us += total_us;
        }
        let sum_ms = sum_us / 1e3 / report.reads as f64;
        assert!(
            (sum_ms - report.avg_read_ms).abs() <= 1e-3_f64.max(report.avg_read_ms * 1e-3),
            "components sum to {sum_ms} ms but reads averaged {} ms (faults: {active})",
            report.avg_read_ms
        );

        let (_, retry_us) = hist(report, "span.retry_us");
        let (_, failover_us) = hist(report, "span.failover_us");
        if active {
            assert!(report.faults_injected > 0, "heavy plan injected nothing");
            assert!(retry_us > 0.0, "injected retries left no span.retry_us");
            assert!(failover_us > 0.0, "outage windows left no span.failover_us");
            assert!(report.degraded_s > 0.0, "node outages left no residency");
        } else {
            assert_eq!(retry_us, 0.0, "clean run accrued retry time");
            assert_eq!(failover_us, 0.0, "clean run accrued failover time");
        }
    }
}
