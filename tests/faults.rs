//! Fault-injection guarantees at the whole-simulator level
//! (DESIGN.md §10): an *active* fault plan keeps every determinism
//! contract the clean simulator makes — tracing changes nothing,
//! replay is bit-identical — while a *zero* plan is indistinguishable
//! from having no fault layer at all; and the new span components
//! (`span.retry_us`, `span.failover_us`) are populated exactly when
//! faults are active, without ever breaking the ten-component sum.

use std::sync::Arc;

use lap::ioworkload::{FileMeta, ProcessTrace};
use lap::lapobs::MetricValue;
use lap::prelude::*;

/// A PM config small enough to run in milliseconds but big enough to
/// exercise remote hits, prefetching, write-backs and evictions.
fn small_pm(pf: PrefetchConfig, cache_mb: u64) -> SimConfig {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, cache_mb);
    cfg.machine.nodes = 8;
    cfg.machine.disks = 4;
    cfg
}

fn small_workload(seed: u64) -> Workload {
    let mut params = CharismaParams::small();
    params.nodes = 8;
    params.generate(seed)
}

/// The `experiments faults` "heavy" plan: transient errors with
/// bursts, disk and node outage windows, network loss and delay.
fn heavy_plan() -> FaultPlan {
    FaultPlan::parse(
        "seed=7,disk-error=0.02,disk-retries=5,backoff-ms=5,burst=10:2,\
         outage=30:3,node-outage=45:5,net-loss=0.02,net-delay=0.05:2",
    )
    .unwrap()
}

fn hist(report: &SimReport, key: &str) -> (u64, f64) {
    match report.obs.get(key) {
        Some(MetricValue::Histogram(h)) => (h.count, h.total_us),
        other => panic!("{key}: expected a histogram, got {other:?}"),
    }
}

/// The zero-overhead tracing contract survives fault injection: a
/// `TraceRecorder` run under an active plan produces the same
/// `SimReport` (every metric, via `PartialEq`) as the no-op run.
#[test]
fn tracing_does_not_change_faulted_results() {
    let wl = Arc::new(small_workload(42));
    let mut cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);
    cfg.fault_plan = Some(heavy_plan());

    let baseline = Simulation::with_recorder(cfg.clone(), Arc::clone(&wl), NoopRecorder).run();
    let (traced, rec) = Simulation::with_recorder(cfg, wl, TraceRecorder::new()).run_traced();

    assert!(
        baseline.faults_injected > 0,
        "plan inert — the A/B says nothing"
    );
    assert_eq!(baseline, traced, "tracing perturbed a faulted simulation");
    assert!(!rec.is_empty(), "the traced run captured no events");
}

/// Same seed, same plan, same report — the fault layer draws from its
/// own seeded stream and from simulated time only, so a faulted run
/// replays bit-identically.
#[test]
fn faulted_runs_replay_bit_identically() {
    let wl = small_workload(42);
    let mut cfg = small_pm(PrefetchConfig::ln_agr_oba(), 2);
    cfg.fault_plan = Some(heavy_plan());

    let a = run_simulation(cfg.clone(), wl.clone());
    let b = run_simulation(cfg, wl);
    assert!(
        a.faults_injected > 0,
        "plan inert — replay check is vacuous"
    );
    assert_eq!(a, b, "same (workload, config, plan) must replay exactly");
}

/// A plan with no fault sources — whether `FaultPlan::default()` or a
/// parsed spec that only sets a seed — must be indistinguishable from
/// `fault_plan: None`: every injection site short-circuits and the
/// report is equal down to the last bit of the registry.
#[test]
fn zero_fault_plan_is_identical_to_no_plan() {
    let wl = small_workload(42);
    let cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);

    let clean = run_simulation(cfg.clone(), wl.clone());

    for plan in [FaultPlan::default(), FaultPlan::parse("seed=9").unwrap()] {
        assert!(plan.is_empty(), "these plans must carry no fault sources");
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.fault_plan = Some(plan);
        let zero = run_simulation(faulted_cfg, wl.clone());
        assert_eq!(
            clean.avg_read_ms.to_bits(),
            zero.avg_read_ms.to_bits(),
            "zero-fault read time drifted"
        );
        assert_eq!(clean, zero, "zero-fault plan perturbed the simulation");
    }
    assert_eq!(clean.faults_injected, 0);
    assert_eq!(clean.failovers, 0);
    assert_eq!(clean.degraded_s, 0.0);
}

/// Span attribution under stress: the retry and failover components
/// cover every post-warmup read (schema: count == reads even when the
/// value is zero), are nonzero exactly when the plan is active, and
/// the ten components still sum to the mean read time — faults are
/// attributed, never lost or invented. Demand reads themselves are
/// neither lost nor double counted.
#[test]
fn retry_and_failover_are_attributed_exactly() {
    const SPAN_KEYS: [&str; 10] = [
        "span.cache_lookup_us",
        "span.queue_us",
        "span.failover_us",
        "span.seek_us",
        "span.rotation_us",
        "span.disk_transfer_us",
        "span.retry_us",
        "span.coordination_us",
        "span.network_us",
        "span.transfer_us",
    ];

    let wl = small_workload(42);
    let cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);
    let clean = run_simulation(cfg.clone(), wl.clone());
    let mut faulted_cfg = cfg;
    faulted_cfg.fault_plan = Some(heavy_plan());
    let faulted = run_simulation(faulted_cfg, wl);

    // No read lost to an aborted job, none double counted by a reissue.
    assert_eq!(clean.reads, faulted.reads, "fault plan changed read count");
    assert_eq!(clean.writes, faulted.writes, "fault plan changed writes");

    for (report, active) in [(&clean, false), (&faulted, true)] {
        let mut sum_us = 0.0;
        for key in SPAN_KEYS {
            let (count, total_us) = hist(report, key);
            assert_eq!(count, report.reads, "{key} must cover every read");
            sum_us += total_us;
        }
        let sum_ms = sum_us / 1e3 / report.reads as f64;
        assert!(
            (sum_ms - report.avg_read_ms).abs() <= 1e-3_f64.max(report.avg_read_ms * 1e-3),
            "components sum to {sum_ms} ms but reads averaged {} ms (faults: {active})",
            report.avg_read_ms
        );

        let (_, retry_us) = hist(report, "span.retry_us");
        let (_, failover_us) = hist(report, "span.failover_us");
        if active {
            assert!(report.faults_injected > 0, "heavy plan injected nothing");
            assert!(retry_us > 0.0, "injected retries left no span.retry_us");
            assert!(failover_us > 0.0, "outage windows left no span.failover_us");
            assert!(report.degraded_s > 0.0, "node outages left no residency");
        } else {
            assert_eq!(retry_us, 0.0, "clean run accrued retry time");
            assert_eq!(failover_us, 0.0, "clean run accrued failover time");
        }
    }
}

/// The stale-completion edge of the outage protocol: when an outage
/// window ends at exactly the instant the aborted job's original
/// `DiskDone` was scheduled, the stale completion and the `DiskUp`
/// event land on the same timestamp. The read must complete exactly
/// once (reissued, not lost to the abort and not double-completed by
/// the stale event), on both event-queue backends, with the oracle on.
#[test]
fn outage_ending_at_disk_done_instant_completes_read_once() {
    // Geometry: one node, one disk, one cold 1-block read. A cold read
    // dispatched at t0 completes at exactly t0 + S (fixed service
    // model, no contention). With an outage of length L < S starting
    // at P, scheduling the read at t0 = P + L - S makes the abort
    // happen mid-service at P and the stale DiskDone arrive exactly at
    // the DiskUp instant P + L.
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::np(), 1);
    cfg.machine.nodes = 1;
    cfg.machine.disks = 1;
    cfg.check = CheckMode::On;
    let s = cfg.machine.disk_read_service();
    let l = SimDuration::from_millis(5);
    assert!(l < s, "outage must end mid-service for the edge to exist");

    // The outage phase is seed-derived; deterministically take the
    // first seed that leaves room for a non-negative compute lead-in.
    let (plan, p) = (0u64..)
        .find_map(|seed| {
            let plan = FaultPlan::parse(&format!("seed={seed},outage=30:0.005")).unwrap();
            let p = plan.first_disk_down(0).unwrap() - SimTime::ZERO;
            (p >= s).then_some((plan, p))
        })
        .unwrap();

    let bs = cfg.machine.block_size;
    let wl = Workload {
        name: "doneseq-edge".into(),
        block_size: bs,
        nodes: 1,
        files: vec![FileMeta {
            id: FileId(0),
            size: bs,
        }],
        processes: vec![ProcessTrace {
            proc: ProcId(0),
            node: NodeId(0),
            ops: vec![
                Op::Compute(p + l - s),
                Op::Read {
                    file: FileId(0),
                    offset: 0,
                    len: bs,
                },
            ],
        }],
    };
    wl.validate();
    cfg.fault_plan = Some(plan);

    let mut reports = Vec::new();
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let mut c = cfg.clone();
        c.event_queue = backend;
        let r = run_simulation(c, wl.clone());
        assert_eq!(
            r.reads + r.warmup_reads,
            1,
            "{backend:?}: the read must complete exactly once"
        );
        assert_eq!(
            r.failovers, 1,
            "{backend:?}: the outage must abort and reissue the job"
        );
        assert!(
            r.avg_read_ms * 1e6 >= s.as_nanos() as f64,
            "{backend:?}: a reissued read cannot beat one clean service"
        );
        reports.push(r);
    }
    assert_eq!(
        reports[0], reports[1],
        "backends disagree on the stale-completion edge"
    );
}

/// `node-outage-wipe` models a crash, not a nap: the rejoining node
/// comes back with an empty cache. Same seed and schedule as the
/// intact variant, so demand-read conservation and degraded residency
/// are identical — but the wiped runs must re-read lost buffers from
/// disk.
#[test]
fn wiped_node_outages_rejoin_cold_and_pay_for_it() {
    let wl = small_workload(42);
    let run = |spec: &str| {
        let mut cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);
        cfg.check = CheckMode::On;
        cfg.fault_plan = Some(FaultPlan::parse(spec).unwrap());
        run_simulation(cfg, wl.clone())
    };
    let intact = run("seed=7,node-outage=45:5");
    let wiped = run("seed=7,node-outage-wipe=45:5");

    assert!(
        intact.degraded_s > 0.0,
        "plan inert — comparison is vacuous"
    );
    assert_eq!(
        intact.degraded_s, wiped.degraded_s,
        "wipe must not change the outage schedule itself"
    );
    assert_eq!(
        (
            intact.reads + intact.warmup_reads,
            intact.writes + intact.warmup_writes
        ),
        (
            wiped.reads + wiped.warmup_reads,
            wiped.writes + wiped.warmup_writes
        ),
        "wipe lost or double-counted requests"
    );
    assert!(
        wiped.disk_accesses() > intact.disk_accesses(),
        "a cold rejoin must re-read wiped buffers from disk \
         (wiped {} vs intact {})",
        wiped.disk_accesses(),
        intact.disk_accesses()
    );
}
