//! End-to-end guarantees for the request-span accounting and the
//! `lapreport` analysis CLI: the per-component latency breakdown sums
//! to the mean read time on every seed scenario, sampling the trace
//! never changes simulation results, and `lapreport`'s rendered tables
//! are golden-stable.

use std::collections::HashMap;
use std::process::Command;
use std::sync::Arc;

use lap::prelude::*;

fn lapsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lapsim"))
}

fn lapreport() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lapreport"))
}

/// Build the same configuration the `lapsim` CLI would for the seed
/// scenarios, including its shrink-to-workload rule.
fn scenario(
    workload: &str,
    system: CacheSystem,
    prefetch: PrefetchConfig,
    cache_mb: u64,
) -> (SimConfig, Workload) {
    let wl = lap::ioworkload::generate_named(workload, "small", 42).unwrap();
    let mut cfg = SimConfig::pm(system, prefetch, cache_mb);
    if wl.nodes < cfg.machine.nodes {
        cfg.machine.nodes = wl.nodes;
        cfg.machine.disks = cfg.machine.disks.min(wl.nodes.max(2));
    }
    (cfg, wl)
}

fn seed_scenarios() -> Vec<(&'static str, SimConfig, Workload)> {
    vec![
        {
            let (c, w) = scenario(
                "charisma",
                CacheSystem::Pafs,
                PrefetchConfig::ln_agr_is_ppm(1),
                4,
            );
            ("charisma/pafs/ln_agr_is_ppm:1", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::np(), 4);
            ("charisma/pafs/np", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::oba(), 4);
            ("charisma/pafs/oba", c, w)
        },
        {
            let (c, w) = scenario(
                "sprite",
                CacheSystem::Xfs,
                PrefetchConfig::ln_agr_is_ppm(1),
                2,
            );
            ("sprite/xfs/ln_agr_is_ppm:1", c, w)
        },
    ]
}

/// Flatten the report's registry CSV into `metric -> value`, the way
/// downstream consumers (lapreport) see it.
fn metrics_map(report: &SimReport) -> HashMap<String, f64> {
    report
        .obs
        .to_csv()
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(','))
        .filter_map(|(k, v)| v.parse().ok().map(|v| (k.to_string(), v)))
        .collect()
}

const SPAN_KEYS: [&str; 8] = [
    "span.cache_lookup_us",
    "span.queue_us",
    "span.seek_us",
    "span.rotation_us",
    "span.disk_transfer_us",
    "span.coordination_us",
    "span.network_us",
    "span.transfer_us",
];

/// The core attribution contract on all four seed scenarios: every
/// component histogram covers every post-warmup read, the component
/// means sum to the mean read time, and every read lands in exactly
/// one prefetch-outcome class.
#[test]
fn span_breakdown_sums_to_read_time_on_seed_scenarios() {
    for (name, cfg, wl) in seed_scenarios() {
        let report = run_simulation(cfg, wl);
        let m = metrics_map(&report);
        let reads = m["read.latency_ms.count"];
        assert!(reads > 0.0, "{name}: no reads measured");

        let mut sum_ms = 0.0;
        for key in SPAN_KEYS {
            assert_eq!(
                m[&format!("{key}.count")],
                reads,
                "{name}: {key} must cover every read"
            );
            sum_ms += m[&format!("{key}.mean_us")] / 1e3;
        }
        let mean_ms = m["read.latency_ms.mean"];
        assert!(
            (sum_ms - mean_ms).abs() <= 1e-3_f64.max(mean_ms * 1e-3),
            "{name}: breakdown sums to {sum_ms} ms but mean read time is {mean_ms} ms"
        );

        let outcomes = m["span.outcome_demand_hit"]
            + m["span.outcome_covered_by_prefetch"]
            + m["span.outcome_late_prefetch"]
            + m["span.outcome_miss"];
        assert_eq!(
            outcomes, reads,
            "{name}: outcome classes must partition the reads"
        );
        // NP must attribute nothing to prefetching. The aggressive
        // walkers run far enough ahead to cover whole requests; OBA
        // stays one block ahead, so a multi-block read that touches
        // its one prefetched block still misses the rest and stays a
        // Miss — only per-block usage shows up for it.
        let prefetched = m["span.outcome_covered_by_prefetch"] + m["span.outcome_late_prefetch"];
        if name.contains("/np") {
            assert_eq!(prefetched, 0.0, "{name}: NP cannot cover reads");
        } else if name.contains("ln_agr") {
            assert!(prefetched > 0.0, "{name}: no reads covered by prefetch");
        } else {
            assert!(
                m["cache.prefetch_used"] > 0.0,
                "{name}: prefetching never contributed"
            );
        }
    }
}

/// Sampling drops trace events, never simulation results: a run with a
/// 1-in-8 sampled recorder must produce byte-identical metrics to the
/// untraced run.
#[test]
fn sampled_tracing_does_not_change_results() {
    let (cfg, wl) = scenario(
        "charisma",
        CacheSystem::Pafs,
        PrefetchConfig::ln_agr_is_ppm(1),
        4,
    );
    let wl = Arc::new(wl);
    let baseline = run_simulation(cfg.clone(), (*wl).clone());
    let rec = TraceRecorder::with_sampling(TraceRecorder::DEFAULT_CAPACITY, 8);
    let (sampled, rec) = Simulation::with_recorder(cfg, wl, rec).run_traced();

    assert_eq!(baseline.obs.to_csv(), sampled.obs.to_csv());
    assert_eq!(baseline.avg_read_ms, sampled.avg_read_ms);
    // The sampler must have actually dropped high-volume events while
    // counting everything it saw.
    let (mut seen_total, mut kept_total) = (0u64, 0u64);
    for (_, seen, kept) in rec.sampled_counts() {
        assert!(kept <= seen);
        seen_total += seen;
        kept_total += kept;
    }
    assert!(kept_total < seen_total, "sampling kept everything");
}

/// `lapsim --trace-sample N` shrinks the trace file without touching
/// the reported results.
#[test]
fn lapsim_trace_sample_shrinks_trace_and_preserves_summary() {
    let dir = std::env::temp_dir().join(format!("lap-report-sample-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let full = dir.join("full.json");
    let sampled = dir.join("sampled.json");
    let base_args = ["--workload", "charisma", "--cache-mb", "2"];

    let run = |extra: &[&str]| {
        let out = lapsim()
            .args(base_args)
            .args(extra)
            .output()
            .expect("lapsim");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let s_full = run(&["--trace-out", full.to_str().unwrap()]);
    let s_sampled = run(&[
        "--trace-out",
        sampled.to_str().unwrap(),
        "--trace-sample",
        "16",
    ]);
    let s_untraced = run(&[]);

    assert_eq!(s_full, s_sampled, "sampling changed the summary");
    assert_eq!(s_full, s_untraced, "tracing changed the summary");
    let full_len = std::fs::metadata(&full).unwrap().len();
    let sampled_len = std::fs::metadata(&sampled).unwrap().len();
    assert!(
        sampled_len < full_len / 2,
        "1-in-16 sampling barely shrank the trace: {sampled_len} vs {full_len}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden file for the rendered report: run the default charisma
/// scenario through `lapsim --metrics-out` and `lapreport metrics`
/// (human table and JSON) and compare against committed output.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test`.
#[test]
fn lapreport_metrics_matches_golden_file() {
    let dir = std::env::temp_dir().join(format!("lap-report-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("m.csv");

    let out = lapsim()
        .args([
            "--workload",
            "charisma",
            "--system",
            "pafs",
            "--algo",
            "ln_agr_is_ppm:1",
            "--cache-mb",
            "4",
            "--metrics-out",
        ])
        .arg(&metrics)
        .output()
        .expect("run lapsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for (flag, golden_name) in [
        (None, "lapreport_metrics.txt"),
        (Some("--json"), "lapreport_metrics.json"),
    ] {
        let mut cmd = lapreport();
        cmd.arg("metrics").arg(&metrics);
        if let Some(f) = flag {
            cmd.arg(f);
        }
        let out = cmd.output().expect("run lapreport");
        assert!(
            out.status.success(),
            "lapreport failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let rendered = String::from_utf8(out.stdout).unwrap();
        let path = format!("{}/tests/golden/{golden_name}", env!("CARGO_MANIFEST_DIR"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing {golden_name} — run UPDATE_GOLDEN=1 cargo test"));
        assert_eq!(
            rendered, golden,
            "lapreport output changed; if intended, regenerate with UPDATE_GOLDEN=1"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `lapreport metrics` is the schema-drift tripwire: a missing metric
/// key must be a hard error naming the key, not a silent zero.
#[test]
fn lapreport_fails_loudly_on_missing_metric() {
    let dir = std::env::temp_dir().join(format!("lap-report-drift-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("m.csv");
    let out = lapsim()
        .args(["--workload", "sprite", "--cache-mb", "2", "--metrics-out"])
        .arg(&metrics)
        .output()
        .expect("run lapsim");
    assert!(out.status.success());

    // Drop one span metric's rows, as a renamed metric would.
    let csv = std::fs::read_to_string(&metrics).unwrap();
    let pruned: String = csv
        .lines()
        .filter(|l| !l.starts_with("span.queue_us."))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&metrics, pruned).unwrap();

    let out = lapreport().arg("metrics").arg(&metrics).output().unwrap();
    assert!(!out.status.success(), "missing key must fail the report");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("span.queue_us"), "stderr names the key: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `bench-diff` accepts identical results (modulo wall-clock) and
/// rejects drifted ones.
#[test]
fn lapreport_bench_diff_detects_drift() {
    let dir = std::env::temp_dir().join(format!("lap-report-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let row = |read: f64, wall: u64| {
        format!(
            "{{\n\"schema\": 1,\n\"scenarios\": [\n{{\"name\":\"s1\",\"avg_read_ms\":{read},\"reads\":100,\"disk_accesses\":42,\"wall_ms\":{wall}}}\n]\n}}\n"
        )
    };
    std::fs::write(&a, row(1.25, 10)).unwrap();
    std::fs::write(&b, row(1.25, 99)).unwrap();
    let ok = lapreport()
        .arg("bench-diff")
        .args([&a, &b])
        .output()
        .unwrap();
    assert!(ok.status.success(), "wall-clock drift must be ignored");

    std::fs::write(&b, row(1.26, 10)).unwrap();
    let bad = lapreport()
        .arg("bench-diff")
        .args([&a, &b])
        .output()
        .unwrap();
    assert!(!bad.status.success(), "result drift must fail");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("s1"), "diff names the scenario: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
