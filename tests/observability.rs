//! Observability guarantees: tracing never changes simulation results
//! (the zero-overhead contract) and the Chrome-trace export is
//! byte-stable run to run.

use std::sync::Arc;

use lap::lapobs::{chrome, Event, StationKind};
use lap::prelude::*;

/// A PM config small enough to run in milliseconds but big enough to
/// exercise remote hits, prefetching, write-backs and evictions.
fn small_pm(pf: PrefetchConfig, cache_mb: u64) -> SimConfig {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, pf, cache_mb);
    cfg.machine.nodes = 8;
    cfg.machine.disks = 4;
    cfg
}

fn small_workload(seed: u64) -> Workload {
    let mut params = CharismaParams::small();
    params.nodes = 8;
    params.generate(seed)
}

/// A tiny fully hand-built workload whose trace is small and rich:
/// sequential reads (walk + prefetch), an off-path jump (mispredict),
/// and writes (write-back sweep). Used for the golden trace.
fn tiny_workload() -> Workload {
    use lap::ioworkload::{FileMeta, Op, ProcessTrace};
    let block = 8192u64;
    let read = |offset: u64| Op::Read {
        file: FileId(0),
        offset: offset * block,
        len: block,
    };
    let write = |offset: u64| Op::Write {
        file: FileId(0),
        offset: offset * block,
        len: block,
    };
    let think = Op::Compute(SimDuration::from_millis(5));
    let mut ops = Vec::new();
    // A sequential run the predictor learns and walks ahead of.
    for i in 0..12 {
        ops.push(read(i));
        ops.push(think);
    }
    // Jump off the predicted path: a mispredict + walk restart.
    for i in [40u64, 41, 42, 3, 50] {
        ops.push(read(i));
        ops.push(think);
    }
    // Dirty some blocks so the write-back sweep has work.
    for i in 0..4 {
        ops.push(write(i));
        ops.push(think);
    }
    Workload {
        name: "obs-tiny".into(),
        block_size: block,
        nodes: 2,
        files: vec![FileMeta {
            id: FileId(0),
            size: 64 * block,
        }],
        processes: vec![ProcessTrace {
            proc: ProcId(0),
            node: NodeId(0),
            ops,
        }],
    }
}

fn tiny_config() -> SimConfig {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1);
    cfg.machine.nodes = 2;
    cfg.machine.disks = 2;
    cfg
}

/// The structural half of "valid JSON": balanced braces/brackets and
/// no trailing commas, checked without a JSON dependency.
fn assert_valid_json_shape(json: &str) {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut esc = false;
    let mut prev = ' ';
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => {
                depth_obj -= 1;
                assert_ne!(prev, ',', "trailing comma before }}");
            }
            '[' => depth_arr += 1,
            ']' => {
                depth_arr -= 1;
                assert_ne!(prev, ',', "trailing comma before ]");
            }
            _ => {}
        }
        if !c.is_whitespace() {
            prev = c;
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced close");
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth_obj, 0, "unbalanced braces");
    assert_eq!(depth_arr, 0, "unbalanced brackets");
}

/// The zero-overhead contract, half one: attaching a `TraceRecorder`
/// must not change a single number in the report. `SimReport` is
/// `PartialEq`, so this compares every metric — including the whole
/// unified registry — at once.
#[test]
fn tracing_does_not_change_simulation_results() {
    let wl = Arc::new(small_workload(42));
    let cfg = small_pm(PrefetchConfig::ln_agr_is_ppm(1), 1);

    let baseline = Simulation::with_recorder(cfg.clone(), Arc::clone(&wl), NoopRecorder).run();
    let (traced, rec) = Simulation::with_recorder(cfg, wl, TraceRecorder::new()).run_traced();

    assert_eq!(baseline, traced, "tracing perturbed the simulation");
    assert!(!rec.is_empty(), "the traced run captured no events");
    assert_eq!(rec.dropped(), 0, "small run must fit the ring buffer");
}

/// The zero-overhead contract, half two: the default `Simulation::new`
/// path (NoopRecorder baked in) matches the explicit-recorder path.
#[test]
fn default_path_is_the_noop_path() {
    let wl = small_workload(7);
    let cfg = small_pm(PrefetchConfig::oba(), 1);
    let a = run_simulation(cfg.clone(), wl.clone());
    let b = Simulation::with_recorder(cfg, Arc::new(wl), NoopRecorder).run();
    assert_eq!(a, b);
}

/// The trace must contain the event families the exporter and the
/// paper's analysis rely on: disk service spans, queue activity,
/// prefetch walk lifecycle, mispredict markers and write-backs.
#[test]
fn trace_captures_every_layer() {
    let (_, rec) = run_simulation_traced(tiny_config(), Arc::new(tiny_workload()));
    let has = |p: &dyn Fn(&Event) -> bool| rec.events().any(|(_, e)| p(e));

    assert!(
        has(&|e| matches!(
            e,
            Event::ServiceBegin { station, .. } if station.kind == StationKind::Disk
        )),
        "no disk service spans"
    );
    assert!(
        has(&|e| matches!(
            e,
            Event::ServiceEnd { station, .. } if station.kind == StationKind::Disk
        )),
        "disk spans never close"
    );
    assert!(
        has(&|e| matches!(e, Event::Mispredict { .. })),
        "no mispredict instants"
    );
    assert!(
        has(&|e| matches!(e, Event::WalkStart { .. })),
        "no walk starts"
    );
    assert!(
        has(&|e| matches!(e, Event::WalkRestart { .. })),
        "off-path jump never restarted the walk"
    );
    assert!(
        has(&|e| matches!(e, Event::PrefetchIssue { .. })),
        "no prefetch issues"
    );
    assert!(
        has(&|e| matches!(e, Event::CacheMiss { .. })),
        "no cache misses"
    );
    assert!(
        has(&|e| matches!(e, Event::CacheInsert { .. })),
        "no cache inserts"
    );
    assert!(
        has(&|e| matches!(e, Event::WriteBack { .. })),
        "no write-backs"
    );
    assert!(
        has(&|e| matches!(e, Event::SweepStart { .. })),
        "no write-back sweep"
    );
    assert!(
        has(&|e| matches!(e, Event::ReadDone { .. })),
        "no read completions"
    );
}

/// Byte-stable export: two identical runs must serialize to the exact
/// same Chrome trace JSON, and that JSON must be structurally valid
/// and contain the span/instant phases Perfetto renders.
#[test]
fn chrome_export_is_byte_stable_and_well_formed() {
    let run = || {
        let (_, rec) = run_simulation_traced(tiny_config(), Arc::new(tiny_workload()));
        chrome::export(rec.events())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "export is not byte-stable across identical runs");

    assert_valid_json_shape(&a);
    assert!(a.starts_with("{\"displayTimeUnit\":\"ms\","));
    assert!(a.contains("\"ph\":\"B\""), "no span-begin events");
    assert!(a.contains("\"ph\":\"E\""), "no span-end events");
    assert!(a.contains("\"ph\":\"i\""), "no instant events");
    assert!(
        a.contains("\"mispredict\""),
        "mispredict instants missing from JSON"
    );
    assert!(a.contains("\"disk 0\""), "disk track never named");
}

/// Golden file: the tiny workload's trace, committed under
/// `tests/golden/`. Regenerate with `UPDATE_GOLDEN=1 cargo test`.
#[test]
fn chrome_export_matches_golden_file() {
    let (_, rec) = run_simulation_traced(tiny_config(), Arc::new(tiny_workload()));
    let json = chrome::export(rec.events());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tiny_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("missing tests/golden/tiny_trace.json — run UPDATE_GOLDEN=1 cargo test");
    assert_eq!(
        json, golden,
        "Chrome export changed; if intended, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The unified metrics registry lands in the report and its CSV form
/// is stable and covers all four stats layers.
#[test]
fn metrics_registry_covers_all_layers() {
    let (report, _) = run_simulation_traced(tiny_config(), Arc::new(tiny_workload()));
    let csv = report.obs.to_csv();
    assert!(csv.starts_with("metric,value\n"));
    for needle in [
        "read.latency_ms.mean", // core metrics
        "cache.local_hits",     // coopcache stats
        "prefetch.issued",      // prefetch stats
        "disk0.completed",      // simkit station stats
        "disk0.utilization",
        "sim.seconds",
    ] {
        assert!(
            csv.lines().any(|l| l.starts_with(&format!("{needle},"))),
            "registry is missing {needle}:\n{csv}"
        );
    }
    // Same run, same CSV bytes.
    let (report2, _) = run_simulation_traced(tiny_config(), Arc::new(tiny_workload()));
    assert_eq!(csv, report2.obs.to_csv());
}
