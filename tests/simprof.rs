//! Self-profiling guarantees: turning the profiler on must never
//! change a simulation result, and what it measures must be
//! deterministic.
//!
//! These are the acceptance gates of the simprof layer:
//! * profiled and unprofiled runs produce byte-identical reports
//!   (`SimReport` equality plus `f64::to_bits` on the headline metric)
//!   on all four BENCH.json seed scenarios, and
//! * two same-seed profiled runs produce identical cost counters —
//!   the property that lets CI compare them exactly.

use lap::prelude::*;

/// The four BENCH.json seed scenarios, built exactly as
/// `experiments --bench-out` builds them at small scale, seed 42
/// (`bench::build_workload` / `bench::build_config`).
fn seed_scenarios() -> Vec<(&'static str, SimConfig, Workload)> {
    let charisma = |system, pf, cache_mb| {
        let wl = CharismaParams::small().generate(42);
        let mut cfg = SimConfig::pm(system, pf, cache_mb);
        cfg.machine.nodes = CharismaParams::small().nodes;
        cfg.machine.disks = 4;
        (cfg, wl)
    };
    let sprite = |system, pf, cache_mb| {
        let wl = SpriteParams::small().generate(42);
        let mut cfg = SimConfig::now(system, pf, cache_mb);
        cfg.machine.nodes = SpriteParams::small().nodes;
        cfg.machine.disks = 4;
        (cfg, wl)
    };
    vec![
        {
            let (c, w) = charisma(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 4);
            ("charisma/pafs/ln_agr_is_ppm:1/4MB", c, w)
        },
        {
            let (c, w) = charisma(CacheSystem::Pafs, PrefetchConfig::np(), 4);
            ("charisma/pafs/np/4MB", c, w)
        },
        {
            let (c, w) = charisma(CacheSystem::Pafs, PrefetchConfig::oba(), 4);
            ("charisma/pafs/oba/4MB", c, w)
        },
        {
            let (c, w) = sprite(CacheSystem::Xfs, PrefetchConfig::ln_agr_is_ppm(1), 2);
            ("sprite/xfs/ln_agr_is_ppm:1/2MB", c, w)
        },
    ]
}

/// Profiling on/off bit-identity on every seed scenario: the profiler
/// only reads counters the run maintains anyway, so the report —
/// every metric, every histogram — must be unchanged.
#[test]
fn profiled_runs_are_bit_identical_to_unprofiled() {
    for (name, cfg, wl) in seed_scenarios() {
        let plain = run_simulation(cfg.clone(), wl.clone());
        let (profiled, profile) = run_simulation_profiled(cfg, wl);
        assert_eq!(
            plain.avg_read_ms.to_bits(),
            profiled.avg_read_ms.to_bits(),
            "{name}: avg_read_ms drifted under profiling"
        );
        assert_eq!(plain, profiled, "{name}: report drifted under profiling");
        assert_eq!(
            plain.obs.to_csv(),
            profiled.obs.to_csv(),
            "{name}: metrics CSV drifted under profiling"
        );
        // And the profile itself did real work.
        let c = &profile.counters;
        assert!(c.events > 0, "{name}: no events counted");
        assert_eq!(
            c.queue_pushes, c.events,
            "{name}: a drained queue pops exactly what was pushed"
        );
        assert!(c.peak_queue_depth > 0 && c.station_dispatches > 0);
        assert!(c.cache_probes > 0, "{name}: no cache probes counted");
    }
}

/// Two same-seed profiled runs must produce identical counters — the
/// determinism that lets BENCH.json hard-gate them.
#[test]
fn profile_counters_are_identical_across_same_seed_runs() {
    for (name, cfg, wl) in seed_scenarios() {
        let (r1, p1) = run_simulation_profiled(cfg.clone(), wl.clone());
        let (r2, p2) = run_simulation_profiled(cfg, wl);
        assert_eq!(r1, r2, "{name}: reports differ across same-seed runs");
        assert_eq!(
            p1.counters, p2.counters,
            "{name}: profile counters differ across same-seed runs"
        );
        assert_eq!(p1.reads, p2.reads, "{name}: read counts differ");
        // Derived ratios are computed from the counters, so they are
        // bit-stable too.
        assert_eq!(
            p1.counters.events_per_read(p1.reads).to_bits(),
            p2.counters.events_per_read(p2.reads).to_bits()
        );
        assert_eq!(
            p1.counters.mean_queue_depth().to_bits(),
            p2.counters.mean_queue_depth().to_bits()
        );
    }
}

/// The profiler composes with tracing: `run_profiled` on a recording
/// simulation yields the same report as `run_traced`, plus counters.
#[test]
fn profiling_composes_with_tracing() {
    let (name, cfg, wl) = seed_scenarios().remove(0);
    let wl = std::sync::Arc::new(wl);
    let (traced, _) =
        Simulation::with_recorder(cfg.clone(), wl.clone(), TraceRecorder::new()).run_traced();
    let (profiled, rec, profile) =
        Simulation::with_recorder(cfg, wl, TraceRecorder::new()).run_profiled();
    assert_eq!(traced, profiled, "{name}: tracing+profiling drifted");
    assert!(rec.events().next().is_some(), "trace recorded nothing");
    assert!(profile.counters.events > 0);
}
