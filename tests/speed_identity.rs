//! The bit-identity contract of the raw-speed optimizations
//! (DESIGN.md §14, docs/PERFORMANCE.md): the calendar event queue and
//! the dense cache-metadata layout are pure speed changes. On every
//! seed scenario, every combination of queue backend × metadata layout
//! must produce the *same* `SimReport` — field-for-field equal, with
//! `avg_read_ms` identical down to the float bits.

use std::sync::Arc;

use lap::prelude::*;

/// Build the same configuration the `lapsim` CLI would for the seed
/// scenarios, including its shrink-to-workload rule.
fn scenario(
    workload: &str,
    system: CacheSystem,
    prefetch: PrefetchConfig,
    cache_mb: u64,
) -> (SimConfig, Workload) {
    let wl = lap::ioworkload::generate_named(workload, "small", 42).unwrap();
    let mut cfg = SimConfig::pm(system, prefetch, cache_mb);
    if wl.nodes < cfg.machine.nodes {
        cfg.machine.nodes = wl.nodes;
        cfg.machine.disks = cfg.machine.disks.min(wl.nodes.max(2));
    }
    (cfg, wl)
}

fn seed_scenarios() -> Vec<(&'static str, SimConfig, Workload)> {
    vec![
        {
            let (c, w) = scenario(
                "charisma",
                CacheSystem::Pafs,
                PrefetchConfig::ln_agr_is_ppm(1),
                4,
            );
            ("charisma/pafs/ln_agr_is_ppm:1", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::np(), 4);
            ("charisma/pafs/np", c, w)
        },
        {
            let (c, w) = scenario("charisma", CacheSystem::Pafs, PrefetchConfig::oba(), 4);
            ("charisma/pafs/oba", c, w)
        },
        {
            let (c, w) = scenario(
                "sprite",
                CacheSystem::Xfs,
                PrefetchConfig::ln_agr_is_ppm(1),
                2,
            );
            ("sprite/xfs/ln_agr_is_ppm:1", c, w)
        },
    ]
}

/// All four backend × layout combinations agree exactly on every seed
/// scenario. The Heap/Classic cell is the reference implementation;
/// Calendar/Dense is what production configs run.
#[test]
fn queue_backend_and_meta_layout_are_bit_identical() {
    for (name, cfg, wl) in seed_scenarios() {
        let wl = Arc::new(wl);
        let mut reference: Option<SimReport> = None;
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            for layout in [MetaLayout::Classic, MetaLayout::Dense] {
                let mut c = cfg.clone();
                c.event_queue = backend;
                c.meta_layout = layout;
                let report = Simulation::new_shared(c, Arc::clone(&wl)).run();
                match &reference {
                    None => reference = Some(report),
                    Some(base) => {
                        assert_eq!(
                            report.avg_read_ms.to_bits(),
                            base.avg_read_ms.to_bits(),
                            "{name}: avg_read_ms drifted under {}/{}",
                            backend.name(),
                            layout.name(),
                        );
                        assert_eq!(
                            &report,
                            base,
                            "{name}: SimReport drifted under {}/{}",
                            backend.name(),
                            layout.name(),
                        );
                    }
                }
            }
        }
    }
}

/// The sprite/xfs scenario exercises the holder table hard (remote
/// hits, invalidations, N-chance forwarding); run it with a LocalOnly
/// sanity cell too so all three cache systems see both layouts.
#[test]
fn local_only_system_ignores_layout_but_accepts_it() {
    let (cfg, wl) = scenario(
        "sprite",
        CacheSystem::LocalOnly,
        PrefetchConfig::ln_agr_is_ppm(1),
        2,
    );
    let wl = Arc::new(wl);
    let mut classic = cfg.clone();
    classic.meta_layout = MetaLayout::Classic;
    let mut dense = cfg;
    dense.meta_layout = MetaLayout::Dense;
    let a = Simulation::new_shared(classic, Arc::clone(&wl)).run();
    let b = Simulation::new_shared(dense, wl).run();
    assert_eq!(a, b);
    assert_eq!(a.avg_read_ms.to_bits(), b.avg_read_ms.to_bits());
}
