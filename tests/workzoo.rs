//! Integration tests for the workload zoo: the trace front-end's
//! golden fixture and the registry wiring of the CLI tools.

use std::process::Command;

use lap::prelude::*;
use lap::workzoo;

fn lapgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lapgen"))
}

fn lapsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lapsim"))
}

fn fixture_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Golden file for the strace front-end: parsing the committed fixture
/// must yield exactly the committed workload text — offsets, lengths,
/// compute gaps, file sizes, process assignment.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test`.
#[test]
fn strace_fixture_parse_matches_golden_file() {
    let text = std::fs::read_to_string(fixture_path("strace_small.txt")).unwrap();
    let wl = workzoo::tracefile::parse_strace("strace_small.txt", &text).expect("fixture parses");
    let rendered = wl.to_text();

    let golden_path = fixture_path("strace_small.trace");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|_| panic!("missing strace_small.trace — run UPDATE_GOLDEN=1 cargo test"));
    assert_eq!(
        rendered, golden,
        "strace parse output changed; if intended, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The parsed fixture replays deterministically through the simulator:
/// the same trace produces bit-identical reports, and the demand model
/// survives the byte→block mapping (every read op is served).
#[test]
fn strace_fixture_replays_deterministically() {
    let spec = format!("strace:{}", fixture_path("strace_small.txt"));
    let build = || {
        WorkloadSpec::parse(&spec)
            .expect("strace spec parses")
            .build(42)
            .expect("fixture builds")
    };
    let wl = build();
    assert!(wl.io_ops() > 0);

    let run = || {
        let mut cfg = SimConfig::now(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1);
        cfg.fit_to_workload(&wl);
        run_simulation(cfg, build())
    };
    let a = run();
    let b = run();
    assert!(a.reads > 0 && a.avg_read_ms.is_finite() && a.avg_read_ms > 0.0);
    assert_eq!(a.avg_read_ms.to_bits(), b.avg_read_ms.to_bits());
    assert_eq!((a.reads, a.disk_accesses()), (b.reads, b.disk_accesses()));
}

/// Satellite 1: every tool rejects an unknown `--workload` with a
/// non-zero exit and the full registry menu on stderr.
#[test]
fn lapsim_rejects_unknown_workload_with_the_menu() {
    let out = lapsim()
        .args(["--workload", "fortnite"])
        .output()
        .expect("run lapsim");
    assert!(!out.status.success(), "bad --workload must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for name in [
        "charisma", "sprite", "web", "db", "mltrain", "strace", "blktrace",
    ] {
        assert!(
            stderr.contains(name),
            "registry menu missing {name:?} in:\n{stderr}"
        );
    }
}

#[test]
fn lapgen_rejects_unknown_spec_with_the_menu() {
    let out = lapgen().args(["web:0"]).output().expect("run lapgen");
    assert!(!out.status.success(), "bad spec must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("web:0"), "menu should echo the bad spec");
    assert!(stderr.contains("mltrain"), "menu should list the registry");
}

/// A zoo spec flows end to end: lapgen writes the trace text, lapsim
/// replays it, and the direct `--workload` path reaches the same sim.
#[test]
fn zoo_spec_round_trips_through_lapgen_and_lapsim() {
    let dir = std::env::temp_dir().join(format!("lap-zoo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("web.trace");

    let out = lapgen()
        .args(["web:8,0.8,64", "--seed", "7", "-o"])
        .arg(&trace)
        .output()
        .expect("run lapgen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lapsim()
        .args(["--trace"])
        .arg(&trace)
        .args(["--machine", "now", "--cache-mb", "1"])
        .output()
        .expect("run lapsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lapsim()
        .args([
            "--workload",
            "web:8,0.8,64",
            "--seed",
            "7",
            "--machine",
            "now",
            "--cache-mb",
            "1",
        ])
        .output()
        .expect("run lapsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `lapsim --workload strace:FILE` ingests a raw text trace directly.
#[test]
fn lapsim_runs_a_strace_spec_directly() {
    let spec = format!("strace:{}", fixture_path("strace_small.txt"));
    let out = lapsim()
        .args(["--workload", &spec, "--machine", "now", "--cache-mb", "1"])
        .output()
        .expect("run lapsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("read") && stdout.contains("reads"),
        "summary line missing: {stdout}"
    );
}
